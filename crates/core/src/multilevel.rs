//! Multilevel (clustered) placement — the extension the paper's
//! conclusion points at ("placing larger netlists in less time").
//!
//! The flow is the classical multilevel scheme on top of the Kraftwerk
//! engine:
//!
//! 1. **Coarsen** ([`cluster`]): heavy-edge matching merges strongly
//!    connected movable cells pairwise (repeatedly, until the target
//!    ratio), producing a clustered netlist whose cluster cells carry the
//!    combined area;
//! 2. **Place coarse**: the ordinary Kraftwerk iteration on the clustered
//!    netlist — fewer variables, bigger objects, same algorithm (the
//!    mixed-size claim of section 5 is what makes this work unchanged);
//! 3. **Uncluster** ([`Clustering::expand`]): members take their
//!    cluster's location (fanned out over the cluster footprint);
//! 4. **Refine**: a resumed (ECO-style) session on the flat netlist
//!    polishes the expanded placement with a handful of transformations.
//!
//! [`place_multilevel`] packages the whole flow.
//!
//! ```
//! use kraftwerk_core::{cluster, ClusteringConfig};
//! use kraftwerk_netlist::synth::{generate, SynthConfig};
//!
//! let nl = generate(&SynthConfig::with_size("ml", 200, 260, 8));
//! let clustering = cluster(&nl, &ClusteringConfig::default());
//! assert!(clustering.coarse().num_movable() < nl.num_movable());
//! ```

use crate::config::KraftwerkConfig;
use crate::session::{PlaceResult, PlacementSession};
use kraftwerk_geom::{Point, Size, Vector};
use kraftwerk_netlist::{CellId, CellKind, Netlist, NetlistBuilder, PinDirection, Placement};
use std::collections::HashMap;

/// Coarsening controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringConfig {
    /// Stop coarsening once `coarse cells / original cells` drops to this
    /// ratio (each matching pass roughly halves the count).
    pub target_ratio: f64,
    /// Largest cluster area as a multiple of the average cell area;
    /// prevents snowballing super-clusters that the density model cannot
    /// spread.
    pub max_cluster_area_factor: f64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            target_ratio: 0.3,
            max_cluster_area_factor: 12.0,
        }
    }
}

/// The result of coarsening: the clustered netlist plus the cell↔cluster
/// maps needed to move placements between the levels.
#[derive(Debug, Clone)]
pub struct Clustering {
    coarse: Netlist,
    /// For every original cell, its cluster's cell id in `coarse`.
    cluster_of: Vec<CellId>,
    /// For every coarse cell, the original member cells.
    members: Vec<Vec<CellId>>,
}

impl Clustering {
    /// The clustered netlist.
    #[must_use]
    pub fn coarse(&self) -> &Netlist {
        &self.coarse
    }

    /// The cluster (coarse cell) an original cell belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not from the original netlist.
    #[must_use]
    pub fn cluster_of(&self, cell: CellId) -> CellId {
        self.cluster_of[cell.index()]
    }

    /// Member cells of a coarse cell.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not from the coarse netlist.
    #[must_use]
    pub fn members(&self, cluster: CellId) -> &[CellId] {
        &self.members[cluster.index()]
    }

    /// Expands a coarse placement onto the original netlist: every member
    /// lands at its cluster's position, fanned out horizontally over the
    /// cluster's width so members do not sit exactly on top of each other.
    #[must_use]
    pub fn expand(&self, original: &Netlist, coarse_placement: &Placement) -> Placement {
        let mut placement = original.initial_placement();
        for (cluster_idx, members) in self.members.iter().enumerate() {
            let cluster_id = CellId::from_index(cluster_idx);
            let at = coarse_placement.position(cluster_id);
            let total_width: f64 = members
                .iter()
                .map(|&m| original.cell(m).size().width)
                .sum();
            let mut x = at.x - total_width * 0.5;
            for &member in members {
                if !original.cell(member).is_movable() {
                    continue;
                }
                let w = original.cell(member).size().width;
                placement.set_position(member, Point::new(x + w * 0.5, at.y));
                x += w;
            }
        }
        placement
    }
}

/// Heavy-edge matching coarsening; see the module documentation.
///
/// Fixed cells are never merged (each remains its own singleton cluster
/// at its fixed position); blocks are not merged either, preserving
/// their identity for the mixed flows.
#[must_use]
pub fn cluster(netlist: &Netlist, config: &ClusteringConfig) -> Clustering {
    let n = netlist.num_cells();
    // Union-find over original cells.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    let avg_area = netlist.average_cell_area().max(1e-12);
    let max_area = config.max_cluster_area_factor * avg_area;
    let mut area: Vec<f64> = netlist.cell_ids().map(|id| netlist.cell(id).area()).collect();
    let mergeable =
        |nl: &Netlist, id: usize| nl.cell(CellId::from_index(id)).kind() == CellKind::Standard;

    let target = ((netlist.num_movable() as f64) * config.target_ratio).max(4.0) as usize;
    let mut movable_clusters = netlist.num_movable();

    // Matching passes.
    for _pass in 0..8 {
        if movable_clusters <= target {
            break;
        }
        // Connectivity between current clusters: weight 1/(k-1) per
        // shared net, the standard heavy-edge score.
        let mut scores: HashMap<(usize, usize), f64> = HashMap::new();
        for (_, net) in netlist.nets() {
            let k = net.degree();
            if !(2..=16).contains(&k) {
                continue; // huge nets carry no locality signal
            }
            let w = 1.0 / (k as f64 - 1.0);
            let roots: Vec<usize> = net
                .pins()
                .iter()
                .map(|&p| find(&mut parent, netlist.pin(p).cell().index()))
                .collect();
            for i in 0..roots.len() {
                for j in (i + 1)..roots.len() {
                    let (a, b) = (roots[i].min(roots[j]), roots[i].max(roots[j]));
                    if a != b {
                        *scores.entry((a, b)).or_insert(0.0) += w;
                    }
                }
            }
        }
        // Sort candidate pairs by score (descending) and greedily match.
        let mut pairs: Vec<((usize, usize), f64)> = scores.into_iter().collect();
        pairs.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        let mut matched = vec![false; n];
        let mut merged_any = false;
        for ((a, b), _) in pairs {
            if matched[a] || matched[b] {
                continue;
            }
            if !mergeable(netlist, a) || !mergeable(netlist, b) {
                continue;
            }
            if area[a] + area[b] > max_area {
                continue;
            }
            parent[b] = a;
            area[a] += area[b];
            matched[a] = true;
            matched[b] = true;
            movable_clusters -= 1;
            merged_any = true;
            if movable_clusters <= target {
                break;
            }
        }
        if !merged_any {
            break;
        }
    }

    // Materialize the clustered netlist.
    let roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    let mut members_of_root: HashMap<usize, Vec<CellId>> = HashMap::new();
    for i in 0..n {
        members_of_root
            .entry(roots[i])
            .or_default()
            .push(CellId::from_index(i));
    }
    let mut root_list: Vec<usize> = members_of_root.keys().copied().collect();
    root_list.sort_unstable();

    let row_height = netlist.rows().first().map_or_else(
        || netlist.average_cell_area().sqrt(),
        |r| r.height,
    );
    let mut builder = NetlistBuilder::new();
    builder.name(format!("{}_coarse", netlist.name()));
    builder.core_region(netlist.core_region());
    if let Some(row) = netlist.rows().first() {
        builder.rows(netlist.rows().len(), row.height);
    }
    let mut coarse_id_of_root: HashMap<usize, CellId> = HashMap::new();
    let mut members: Vec<Vec<CellId>> = Vec::with_capacity(root_list.len());
    for &root in &root_list {
        let member_cells = &members_of_root[&root];
        let first = netlist.cell(member_cells[0]);
        let name = format!("cl_{root}");
        let coarse_id = if member_cells.len() == 1 {
            match first.kind() {
                CellKind::Fixed => builder.add_fixed_cell(
                    name,
                    first.size(),
                    first.fixed_position().expect("fixed cell has position"),
                ),
                CellKind::Block => builder.add_block(name, first.size()),
                CellKind::Standard => builder.add_cell(name, first.size()),
            }
        } else {
            // Merged standard cells: one wide cell of the combined area.
            let total_area: f64 = member_cells.iter().map(|&m| netlist.cell(m).area()).sum();
            builder.add_cell(name, Size::new(total_area / row_height, row_height))
        };
        coarse_id_of_root.insert(root, coarse_id);
        members.push(member_cells.clone());
    }

    // Nets: map pins to clusters, dedupe, drop internal nets.
    for (_, net) in netlist.nets() {
        let mut seen: Vec<(CellId, PinDirection)> = Vec::new();
        for &pid in net.pins() {
            let pin = netlist.pin(pid);
            let cluster = coarse_id_of_root[&roots[pin.cell().index()]];
            match seen.iter_mut().find(|(c, _)| *c == cluster) {
                Some((_, dir)) => {
                    if pin.direction() == PinDirection::Output {
                        *dir = PinDirection::Output;
                    }
                }
                None => seen.push((cluster, pin.direction())),
            }
        }
        if seen.len() >= 2 {
            builder.add_weighted_net(
                net.name(),
                net.weight(),
                seen.into_iter().map(|(c, d)| (c, Vector::ZERO, d)),
            );
        }
    }

    let coarse = builder.build().expect("clustered netlist is valid");
    let cluster_of = roots
        .iter()
        .map(|r| coarse_id_of_root[r])
        .collect();
    Clustering {
        coarse,
        cluster_of,
        members,
    }
}

/// The complete multilevel flow: coarsen, place coarse, expand, refine
/// flat with a bounded number of transformations.
#[must_use]
pub fn place_multilevel(
    netlist: &Netlist,
    config: KraftwerkConfig,
    clustering_config: &ClusteringConfig,
    refine_transformations: usize,
) -> PlaceResult {
    let clustering = cluster(netlist, clustering_config);
    let coarse_result =
        PlacementSession::new(clustering.coarse(), config.clone()).run();
    let expanded = clustering.expand(netlist, &coarse_result.placement);
    let mut session = PlacementSession::resume(netlist, config, expanded);
    let mut stats = Vec::new();
    for _ in 0..refine_transformations {
        stats.push(session.transform());
        if session.is_converged() {
            break;
        }
    }
    let converged = session.is_converged();
    PlaceResult {
        placement: session.placement().clone(),
        stats,
        converged,
        health: session.health(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::GlobalPlacer;
    use kraftwerk_netlist::metrics;
    use kraftwerk_netlist::synth::{generate, SynthConfig};

    fn circuit() -> Netlist {
        generate(&SynthConfig::with_size("ml", 600, 720, 12))
    }

    #[test]
    fn clustering_reduces_movable_count_to_the_target() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let ratio = c.coarse().num_movable() as f64 / nl.num_movable() as f64;
        assert!(ratio <= 0.5, "ratio {ratio}");
        assert!(c.coarse().num_movable() >= 4);
    }

    #[test]
    fn clustering_preserves_total_movable_area() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let a = nl.total_movable_area();
        let b = c.coarse().total_movable_area();
        assert!((a - b).abs() < 1e-6 * a, "{a} vs {b}");
    }

    #[test]
    fn fixed_cells_stay_fixed_and_singleton() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let fixed_before = nl.num_cells() - nl.num_movable();
        let fixed_after = c.coarse().num_cells() - c.coarse().num_movable();
        assert_eq!(fixed_before, fixed_after);
        for (id, cell) in nl.cells() {
            if cell.kind() == CellKind::Fixed {
                let cl = c.cluster_of(id);
                assert_eq!(c.members(cl), &[id]);
                assert_eq!(
                    c.coarse().cell(cl).fixed_position(),
                    cell.fixed_position()
                );
            }
        }
    }

    #[test]
    fn every_original_cell_has_exactly_one_cluster() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let mut counted = 0;
        for cluster_id in c.coarse().cell_ids() {
            counted += c.members(cluster_id).len();
            for &m in c.members(cluster_id) {
                assert_eq!(c.cluster_of(m), cluster_id);
            }
        }
        assert_eq!(counted, nl.num_cells());
    }

    #[test]
    fn cluster_area_cap_is_respected() {
        let nl = circuit();
        let cfg = ClusteringConfig::default();
        let c = cluster(&nl, &cfg);
        let cap = cfg.max_cluster_area_factor * nl.average_cell_area();
        for (_, cell) in c.coarse().cells() {
            if cell.kind() == CellKind::Standard {
                assert!(cell.area() <= cap + 1e-6, "cluster area {}", cell.area());
            }
        }
    }

    #[test]
    fn expand_covers_every_movable_cell() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let coarse_placement = c.coarse().initial_placement();
        let flat = c.expand(&nl, &coarse_placement);
        assert_eq!(flat.len(), nl.num_cells());
        // Members land near their cluster's position.
        for cluster_id in c.coarse().cell_ids() {
            let at = coarse_placement.position(cluster_id);
            for &m in c.members(cluster_id) {
                if nl.cell(m).is_movable() {
                    let d = flat.position(m).distance(at);
                    let w = c.coarse().cell(cluster_id).size().width;
                    assert!(d <= w, "member {m} strayed {d} (cluster width {w})");
                }
            }
        }
    }

    #[test]
    fn multilevel_flow_is_competitive_with_flat_placement() {
        let nl = circuit();
        let flat = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl);
        let ml = place_multilevel(
            &nl,
            KraftwerkConfig::standard(),
            &ClusteringConfig::default(),
            20,
        );
        let flat_hpwl = metrics::hpwl(&nl, &flat.placement);
        let ml_hpwl = metrics::hpwl(&nl, &ml.placement);
        assert!(
            ml_hpwl < 1.35 * flat_hpwl,
            "multilevel {ml_hpwl:.0} vs flat {flat_hpwl:.0}"
        );
    }

    #[test]
    fn multilevel_is_deterministic() {
        let nl = circuit();
        let a = place_multilevel(&nl, KraftwerkConfig::standard(), &ClusteringConfig::default(), 10);
        let b = place_multilevel(&nl, KraftwerkConfig::standard(), &ClusteringConfig::default(), 10);
        assert_eq!(a.placement, b.placement);
    }
}
