//! Multilevel (clustered) placement — the extension the paper's
//! conclusion points at ("placing larger netlists in less time").
//!
//! The flow is a recursive V-cycle in the spirit of the Ron–Safro–Brandt
//! multigrid energy-minimization scheme, built on the Kraftwerk engine:
//!
//! 1. **Coarsen recursively** ([`cluster`] per level): heavy-edge
//!    matching merges strongly connected movable cells pairwise; each
//!    level coarsens the previous one until at most
//!    [`MultilevelConfig::coarsest_movable`] movables remain;
//! 2. **Place the coarsest level fully**: the ordinary Kraftwerk
//!    iteration on the smallest clustered netlist — fewer variables,
//!    bigger objects, same algorithm (the mixed-size claim of section 5
//!    is what makes this work unchanged);
//! 3. **Interpolate + refine per level** ([`Clustering::expand`], then a
//!    resumed ECO-style session): walking back down the hierarchy, every
//!    level seeds from its parent's placement and runs a *shrinking*
//!    number of refinement transformations — the finer the level, the
//!    fewer (and cheaper-per-variable) the corrections it needs.
//!
//! One [`PlacementSession`] scratch arena is threaded through every
//! level, so the zero-steady-state-allocation property holds per level
//! instead of paying a cold-start growth at each.
//!
//! [`place_multilevel`] packages the whole flow; by default it also
//! switches the net model to [`NetModel::B2B`], whose assembly is linear
//! in net degree — the combination is the supported path for designs
//! beyond ~25k cells.
//!
//! ```
//! use kraftwerk_core::{cluster, ClusteringConfig};
//! use kraftwerk_netlist::synth::{generate, SynthConfig};
//!
//! let nl = generate(&SynthConfig::with_size("ml", 200, 260, 8));
//! let clustering = cluster(&nl, &ClusteringConfig::default());
//! assert!(clustering.coarse().num_movable() < nl.num_movable());
//! ```

use crate::arena::ScratchArena;
use crate::config::{KraftwerkConfig, NetModel};
use crate::error::KraftwerkError;
use crate::session::{PlaceResult, PlacementSession};
use kraftwerk_geom::{Point, Size, Vector};
use kraftwerk_netlist::{CellId, CellKind, Netlist, NetlistBuilder, PinDirection, Placement};
use std::collections::HashMap;

/// Coarsening controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringConfig {
    /// Stop coarsening once `coarse cells / original cells` drops to this
    /// ratio (each matching pass roughly halves the count).
    pub target_ratio: f64,
    /// Largest cluster area as a multiple of the average cell area;
    /// prevents snowballing super-clusters that the density model cannot
    /// spread.
    pub max_cluster_area_factor: f64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            target_ratio: 0.3,
            max_cluster_area_factor: 12.0,
        }
    }
}

/// Controls for the recursive multilevel V-cycle
/// ([`place_multilevel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelConfig {
    /// Per-level coarsening controls. The per-level
    /// [`target_ratio`](ClusteringConfig::target_ratio) is deliberately
    /// gentler than the one-shot default (0.45 vs 0.3): several gentle
    /// levels preserve more connectivity signal than one aggressive
    /// collapse.
    pub clustering: ClusteringConfig,
    /// Stop coarsening once a level has at most this many movable cells;
    /// that level is placed with the full transformation budget.
    pub coarsest_movable: usize,
    /// Hard cap on hierarchy depth (safety valve; the coarsest-movable
    /// threshold is what normally terminates coarsening).
    pub max_levels: usize,
    /// Refinement-transformation budget at the level just above the
    /// coarsest; finer levels shrink proportionally to their size (a
    /// level with `r×` the coarsest's movables gets `refine_base/r`
    /// transformations, floored at [`refine_min`](Self::refine_min)).
    pub refine_base: usize,
    /// Minimum refinement transformations at any level.
    pub refine_min: usize,
    /// Net-model override applied to every level's session. Defaults to
    /// [`NetModel::B2B`], whose assembly is linear in net degree — the
    /// right trade at the scales that justify a multilevel run. `None`
    /// keeps the caller's configured model.
    pub net_model: Option<NetModel>,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            clustering: ClusteringConfig {
                target_ratio: 0.45,
                max_cluster_area_factor: 12.0,
            },
            coarsest_movable: 3000,
            max_levels: 12,
            refine_base: 32,
            refine_min: 8,
            net_model: Some(NetModel::B2B),
        }
    }
}

/// The result of coarsening: the clustered netlist plus the cell↔cluster
/// maps needed to move placements between the levels.
#[derive(Debug, Clone)]
pub struct Clustering {
    coarse: Netlist,
    /// For every original cell, its cluster's cell id in `coarse`.
    cluster_of: Vec<CellId>,
    /// For every coarse cell, the original member cells.
    members: Vec<Vec<CellId>>,
}

impl Clustering {
    /// The clustered netlist.
    #[must_use]
    pub fn coarse(&self) -> &Netlist {
        &self.coarse
    }

    /// The cluster (coarse cell) an original cell belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not from the original netlist.
    #[must_use]
    pub fn cluster_of(&self, cell: CellId) -> CellId {
        self.cluster_of[cell.index()]
    }

    /// Member cells of a coarse cell.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not from the coarse netlist.
    #[must_use]
    pub fn members(&self, cluster: CellId) -> &[CellId] {
        &self.members[cluster.index()]
    }

    /// Expands a coarse placement onto the original netlist: every member
    /// lands at its cluster's position, fanned out horizontally over the
    /// cluster's width so members do not sit exactly on top of each
    /// other, then clamped so the member's own footprint stays inside the
    /// core region even when the cluster was placed against an edge.
    #[must_use]
    pub fn expand(&self, original: &Netlist, coarse_placement: &Placement) -> Placement {
        let core = original.core_region();
        let mut placement = original.initial_placement();
        for (cluster_idx, members) in self.members.iter().enumerate() {
            let cluster_id = CellId::from_index(cluster_idx);
            let at = coarse_placement.position(cluster_id);
            let total_width: f64 = members
                .iter()
                .map(|&m| original.cell(m).size().width)
                .sum();
            let mut x = at.x - total_width * 0.5;
            for &member in members {
                if !original.cell(member).is_movable() {
                    continue;
                }
                let size = original.cell(member).size();
                let half_w = (size.width * 0.5).min(core.width() * 0.5);
                let half_h = (size.height * 0.5).min(core.height() * 0.5);
                placement.set_position(
                    member,
                    Point::new(
                        (x + size.width * 0.5).clamp(core.x_lo + half_w, core.x_hi - half_w),
                        at.y.clamp(core.y_lo + half_h, core.y_hi - half_h),
                    ),
                );
                x += size.width;
            }
        }
        placement
    }
}

/// Heavy-edge matching coarsening; see the module documentation.
///
/// Fixed cells are never merged (each remains its own singleton cluster
/// at its fixed position); blocks are not merged either, preserving
/// their identity for the mixed flows.
#[must_use]
pub fn cluster(netlist: &Netlist, config: &ClusteringConfig) -> Clustering {
    let n = netlist.num_cells();
    // Union-find over original cells.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    let avg_area = netlist.average_cell_area().max(1e-12);
    let max_area = config.max_cluster_area_factor * avg_area;
    let mut area: Vec<f64> = netlist.cell_ids().map(|id| netlist.cell(id).area()).collect();
    let mergeable =
        |nl: &Netlist, id: usize| nl.cell(CellId::from_index(id)).kind() == CellKind::Standard;

    let target = ((netlist.num_movable() as f64) * config.target_ratio).max(4.0) as usize;
    let mut movable_clusters = netlist.num_movable();

    // Matching passes.
    for _pass in 0..8 {
        if movable_clusters <= target {
            break;
        }
        // Connectivity between current clusters: weight 1/(k-1) per
        // shared net, the standard heavy-edge score.
        let mut scores: HashMap<(usize, usize), f64> = HashMap::new();
        for (_, net) in netlist.nets() {
            let k = net.degree();
            if !(2..=16).contains(&k) {
                continue; // huge nets carry no locality signal
            }
            let w = 1.0 / (k as f64 - 1.0);
            let roots: Vec<usize> = net
                .pins()
                .iter()
                .map(|&p| find(&mut parent, netlist.pin(p).cell().index()))
                .collect();
            for i in 0..roots.len() {
                for j in (i + 1)..roots.len() {
                    let (a, b) = (roots[i].min(roots[j]), roots[i].max(roots[j]));
                    if a != b {
                        *scores.entry((a, b)).or_insert(0.0) += w;
                    }
                }
            }
        }
        // Sort candidate pairs by score (descending) and greedily match.
        let mut pairs: Vec<((usize, usize), f64)> = scores.into_iter().collect();
        pairs.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        let mut matched = vec![false; n];
        let mut merged_any = false;
        for ((a, b), _) in pairs {
            if matched[a] || matched[b] {
                continue;
            }
            if !mergeable(netlist, a) || !mergeable(netlist, b) {
                continue;
            }
            if area[a] + area[b] > max_area {
                continue;
            }
            parent[b] = a;
            area[a] += area[b];
            matched[a] = true;
            matched[b] = true;
            movable_clusters -= 1;
            merged_any = true;
            if movable_clusters <= target {
                break;
            }
        }
        if !merged_any {
            break;
        }
    }

    // Materialize the clustered netlist.
    let roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    let mut members_of_root: HashMap<usize, Vec<CellId>> = HashMap::new();
    for i in 0..n {
        members_of_root
            .entry(roots[i])
            .or_default()
            .push(CellId::from_index(i));
    }
    let mut root_list: Vec<usize> = members_of_root.keys().copied().collect();
    root_list.sort_unstable();

    let row_height = netlist.rows().first().map_or_else(
        || netlist.average_cell_area().sqrt(),
        |r| r.height,
    );
    let mut builder = NetlistBuilder::new();
    builder.name(format!("{}_coarse", netlist.name()));
    builder.core_region(netlist.core_region());
    if let Some(row) = netlist.rows().first() {
        builder.rows(netlist.rows().len(), row.height);
    }
    let mut coarse_id_of_root: HashMap<usize, CellId> = HashMap::new();
    let mut members: Vec<Vec<CellId>> = Vec::with_capacity(root_list.len());
    for &root in &root_list {
        let member_cells = &members_of_root[&root];
        let first = netlist.cell(member_cells[0]);
        let name = format!("cl_{root}");
        let coarse_id = if member_cells.len() == 1 {
            match first.kind() {
                CellKind::Fixed => builder.add_fixed_cell(
                    name,
                    first.size(),
                    first.fixed_position().expect("fixed cell has position"),
                ),
                CellKind::Block => builder.add_block(name, first.size()),
                CellKind::Standard => builder.add_cell(name, first.size()),
            }
        } else {
            // Merged standard cells: one wide cell of the combined area.
            let total_area: f64 = member_cells.iter().map(|&m| netlist.cell(m).area()).sum();
            builder.add_cell(name, Size::new(total_area / row_height, row_height))
        };
        coarse_id_of_root.insert(root, coarse_id);
        members.push(member_cells.clone());
    }

    // Nets: map pins to clusters, dedupe, drop internal nets.
    for (_, net) in netlist.nets() {
        let mut seen: Vec<(CellId, PinDirection)> = Vec::new();
        for &pid in net.pins() {
            let pin = netlist.pin(pid);
            let cluster = coarse_id_of_root[&roots[pin.cell().index()]];
            match seen.iter_mut().find(|(c, _)| *c == cluster) {
                Some((_, dir)) => {
                    if pin.direction() == PinDirection::Output {
                        *dir = PinDirection::Output;
                    }
                }
                None => seen.push((cluster, pin.direction())),
            }
        }
        if seen.len() >= 2 {
            builder.add_weighted_net(
                net.name(),
                net.weight(),
                seen.into_iter().map(|(c, d)| (c, Vector::ZERO, d)),
            );
        }
    }

    let coarse = builder.build().expect("clustered netlist is valid");
    let cluster_of = roots
        .iter()
        .map(|r| coarse_id_of_root[r])
        .collect();
    Clustering {
        coarse,
        cluster_of,
        members,
    }
}

/// Builds the coarsening hierarchy: `levels[0]` clusters `netlist`,
/// `levels[i]` clusters `levels[i-1].coarse()`, until the coarsest level
/// fits under `ml.coarsest_movable` movables, coarsening stalls, or the
/// depth cap is reached. Empty when the netlist is already small enough.
#[must_use]
pub fn build_hierarchy(netlist: &Netlist, ml: &MultilevelConfig) -> Vec<Clustering> {
    let mut levels: Vec<Clustering> = Vec::new();
    for _ in 0..ml.max_levels {
        let cur: &Netlist = levels.last().map_or(netlist, |c| c.coarse());
        if cur.num_movable() <= ml.coarsest_movable {
            break;
        }
        let next = cluster(cur, &ml.clustering);
        // No-progress guard: matching can stall (area caps, fixed cells);
        // a level that barely shrinks would only add interpolation error.
        if next.coarse().num_movable() * 50 >= cur.num_movable() * 49 {
            break;
        }
        levels.push(next);
    }
    levels
}

/// The complete multilevel V-cycle: coarsen recursively, place the
/// coarsest level with the full budget, then expand and refine each
/// finer level with a shrinking number of transformations (see the
/// module docs). One scratch arena serves every level.
///
/// # Panics
///
/// Panics when a level's run fails beyond recovery; use
/// [`try_place_multilevel`] for the fallible equivalent.
#[must_use]
pub fn place_multilevel(
    netlist: &Netlist,
    config: KraftwerkConfig,
    ml: &MultilevelConfig,
) -> PlaceResult {
    match try_place_multilevel(netlist, config, ml) {
        Ok(result) => result,
        Err(e) => panic!("multilevel placement failed: {e} (use try_place_multilevel)"),
    }
}

/// Fallible [`place_multilevel`].
///
/// # Errors
///
/// Propagates the first level run that fails before producing any usable
/// placement (see [`PlacementSession::try_run`] for the contract).
pub fn try_place_multilevel(
    netlist: &Netlist,
    config: KraftwerkConfig,
    ml: &MultilevelConfig,
) -> Result<PlaceResult, KraftwerkError> {
    let mut cfg = config;
    if let Some(model) = ml.net_model {
        cfg.net_model = model;
    }
    // Resolve a relative wall-clock budget into one absolute deadline up
    // front: every level session clones this config, so the whole V-cycle
    // shares a single cut-off instead of restarting the clock per level.
    cfg.watchdog.deadline = cfg.watchdog.resolve_deadline();
    let levels = build_hierarchy(netlist, ml);
    kraftwerk_trace::counter("multilevel.levels", levels.len() as u64 + 1);

    // Place the coarsest level with the full transformation budget.
    let coarsest: &Netlist = levels.last().map_or(netlist, |c| c.coarse());
    let coarsest_movable = coarsest.num_movable().max(1);
    let mut session = PlacementSession::with_arena(coarsest, cfg.clone(), ScratchArena::default());
    let (mut stats, mut converged) = session.run_loop()?;
    let mut health = session.health_snapshot();
    let (mut placement, mut arena) = session.into_parts();

    // Walk back down the hierarchy: interpolate the parent's placement
    // onto the finer level, then refine with a budget that shrinks in
    // proportion to the level's size so total work stays near-linear.
    for li in (0..levels.len()).rev() {
        let clustering = &levels[li];
        let fine: &Netlist = if li == 0 { netlist } else { levels[li - 1].coarse() };
        let expanded = clustering.expand(fine, &placement);
        let ratio = coarsest_movable as f64 / fine.num_movable().max(1) as f64;
        let budget = ((ml.refine_base as f64 * ratio).round() as usize)
            .clamp(ml.refine_min.max(1), ml.refine_base.max(1));
        let mut level_cfg = cfg.clone();
        level_cfg.max_transformations = budget;
        let mut session = PlacementSession::resume_with_arena(fine, level_cfg, expanded, arena);
        let (level_stats, level_converged) = session.run_loop()?;
        let h = session.health_snapshot();
        health.trips += h.trips;
        health.recoveries += h.recoveries;
        health.degraded |= h.degraded;
        health.budget_exhausted |= h.budget_exhausted;
        // Levels share one deadline, so the later snapshot is the
        // authoritative remaining budget.
        if h.remaining_budget_ms.is_some() {
            health.remaining_budget_ms = h.remaining_budget_ms;
        }
        // Renumber so the combined record stays monotonic across levels.
        let offset = stats.last().map_or(0, |s| s.iteration);
        stats.extend(level_stats.into_iter().map(|mut s| {
            s.iteration += offset;
            s
        }));
        converged = level_converged;
        let parts = session.into_parts();
        placement = parts.0;
        arena = parts.1;
    }
    Ok(PlaceResult {
        placement,
        stats,
        converged,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::GlobalPlacer;
    use kraftwerk_netlist::metrics;
    use kraftwerk_netlist::synth::{generate, SynthConfig};

    fn circuit() -> Netlist {
        generate(&SynthConfig::with_size("ml", 600, 720, 12))
    }

    #[test]
    fn clustering_reduces_movable_count_to_the_target() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let ratio = c.coarse().num_movable() as f64 / nl.num_movable() as f64;
        assert!(ratio <= 0.5, "ratio {ratio}");
        assert!(c.coarse().num_movable() >= 4);
    }

    #[test]
    fn clustering_preserves_total_movable_area() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let a = nl.total_movable_area();
        let b = c.coarse().total_movable_area();
        assert!((a - b).abs() < 1e-6 * a, "{a} vs {b}");
    }

    #[test]
    fn fixed_cells_stay_fixed_and_singleton() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let fixed_before = nl.num_cells() - nl.num_movable();
        let fixed_after = c.coarse().num_cells() - c.coarse().num_movable();
        assert_eq!(fixed_before, fixed_after);
        for (id, cell) in nl.cells() {
            if cell.kind() == CellKind::Fixed {
                let cl = c.cluster_of(id);
                assert_eq!(c.members(cl), &[id]);
                assert_eq!(
                    c.coarse().cell(cl).fixed_position(),
                    cell.fixed_position()
                );
            }
        }
    }

    #[test]
    fn every_original_cell_has_exactly_one_cluster() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let mut counted = 0;
        for cluster_id in c.coarse().cell_ids() {
            counted += c.members(cluster_id).len();
            for &m in c.members(cluster_id) {
                assert_eq!(c.cluster_of(m), cluster_id);
            }
        }
        assert_eq!(counted, nl.num_cells());
    }

    #[test]
    fn cluster_area_cap_is_respected() {
        let nl = circuit();
        let cfg = ClusteringConfig::default();
        let c = cluster(&nl, &cfg);
        let cap = cfg.max_cluster_area_factor * nl.average_cell_area();
        for (_, cell) in c.coarse().cells() {
            if cell.kind() == CellKind::Standard {
                assert!(cell.area() <= cap + 1e-6, "cluster area {}", cell.area());
            }
        }
    }

    #[test]
    fn expand_covers_every_movable_cell() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let coarse_placement = c.coarse().initial_placement();
        let flat = c.expand(&nl, &coarse_placement);
        assert_eq!(flat.len(), nl.num_cells());
        // Members land near their cluster's position.
        for cluster_id in c.coarse().cell_ids() {
            let at = coarse_placement.position(cluster_id);
            for &m in c.members(cluster_id) {
                if nl.cell(m).is_movable() {
                    let d = flat.position(m).distance(at);
                    let w = c.coarse().cell(cluster_id).size().width;
                    assert!(d <= w, "member {m} strayed {d} (cluster width {w})");
                }
            }
        }
    }

    #[test]
    fn multilevel_flow_is_competitive_with_flat_placement() {
        let nl = circuit();
        let flat = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl);
        // Force at least one real level: the 600-cell circuit is below
        // the default coarsest threshold.
        let ml_cfg = MultilevelConfig {
            coarsest_movable: 200,
            ..MultilevelConfig::default()
        };
        let ml = place_multilevel(&nl, KraftwerkConfig::standard(), &ml_cfg);
        let flat_hpwl = metrics::hpwl(&nl, &flat.placement);
        let ml_hpwl = metrics::hpwl(&nl, &ml.placement);
        assert!(
            ml_hpwl < 1.35 * flat_hpwl,
            "multilevel {ml_hpwl:.0} vs flat {flat_hpwl:.0}"
        );
    }

    #[test]
    fn multilevel_is_deterministic() {
        let nl = circuit();
        let ml_cfg = MultilevelConfig {
            coarsest_movable: 200,
            ..MultilevelConfig::default()
        };
        let a = place_multilevel(&nl, KraftwerkConfig::standard(), &ml_cfg);
        let b = place_multilevel(&nl, KraftwerkConfig::standard(), &ml_cfg);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn hierarchy_shrinks_every_level_to_the_coarsest_threshold() {
        let nl = circuit();
        let ml_cfg = MultilevelConfig {
            coarsest_movable: 100,
            ..MultilevelConfig::default()
        };
        let levels = build_hierarchy(&nl, &ml_cfg);
        assert!(!levels.is_empty(), "600 movables must coarsen below 100");
        let mut prev = nl.num_movable();
        for level in &levels {
            let now = level.coarse().num_movable();
            assert!(now < prev, "level did not shrink: {prev} -> {now}");
            prev = now;
        }
        assert!(
            prev <= ml_cfg.coarsest_movable || levels.len() == ml_cfg.max_levels,
            "coarsest level still has {prev} movables"
        );
        // A netlist already below the threshold yields an empty hierarchy.
        assert!(build_hierarchy(&nl, &MultilevelConfig::default()).is_empty());
    }

    #[test]
    fn expand_conserves_total_movable_area_through_the_hierarchy() {
        let nl = circuit();
        let ml_cfg = MultilevelConfig {
            coarsest_movable: 100,
            ..MultilevelConfig::default()
        };
        let levels = build_hierarchy(&nl, &ml_cfg);
        let total = nl.total_movable_area();
        for level in &levels {
            let coarse_total = level.coarse().total_movable_area();
            assert!(
                (coarse_total - total).abs() < 1e-6 * total,
                "movable area drifted: {total} -> {coarse_total}"
            );
        }
    }

    #[test]
    fn expand_keeps_every_member_inside_the_core_region() {
        let nl = circuit();
        let c = cluster(&nl, &ClusteringConfig::default());
        let core = nl.core_region();
        // Park every cluster at the corners and edges of the core: the
        // naive fan-out would push wide members outside.
        let mut coarse_placement = c.coarse().initial_placement();
        let corners = [
            Point::new(core.x_lo, core.y_lo),
            Point::new(core.x_hi, core.y_lo),
            Point::new(core.x_lo, core.y_hi),
            Point::new(core.x_hi, core.y_hi),
        ];
        for (i, id) in c.coarse().cell_ids().enumerate() {
            if c.coarse().cell(id).is_movable() {
                coarse_placement.set_position(id, corners[i % corners.len()]);
            }
        }
        let flat = c.expand(&nl, &coarse_placement);
        for (id, cell) in nl.cells() {
            if !cell.is_movable() {
                continue;
            }
            let p = flat.position(id);
            let half_w = (cell.size().width * 0.5).min(core.width() * 0.5);
            let half_h = (cell.size().height * 0.5).min(core.height() * 0.5);
            assert!(
                p.x >= core.x_lo + half_w - 1e-9 && p.x <= core.x_hi - half_w + 1e-9,
                "cell {id} x={} outside [{}, {}]",
                p.x,
                core.x_lo + half_w,
                core.x_hi - half_w
            );
            assert!(
                p.y >= core.y_lo + half_h - 1e-9 && p.y <= core.y_hi - half_h + 1e-9,
                "cell {id} y={} outside the core",
                p.y
            );
        }
    }

    #[test]
    fn cluster_maps_are_identical_at_any_thread_count() {
        // Clustering is sequential by construction; this pins the
        // contract: the cell→cluster map and the member lists must be
        // bitwise identical at 1, 2 and 8 worker threads.
        let nl = circuit();
        let mut maps: Vec<(Vec<CellId>, Vec<Vec<CellId>>)> = Vec::new();
        for threads in [1usize, 2, 8] {
            kraftwerk_par::set_threads(threads);
            let c = cluster(&nl, &ClusteringConfig::default());
            let cluster_of: Vec<CellId> = nl.cell_ids().map(|id| c.cluster_of(id)).collect();
            let members: Vec<Vec<CellId>> = c
                .coarse()
                .cell_ids()
                .map(|id| c.members(id).to_vec())
                .collect();
            maps.push((cluster_of, members));
        }
        kraftwerk_par::set_threads(0);
        assert_eq!(maps[0], maps[1], "1 vs 2 threads");
        assert_eq!(maps[0], maps[2], "1 vs 8 threads");
    }
}
