//! The per-session scratch arena.
//!
//! Every buffer the placement transformation loop needs is allocated once
//! and reused across iterations: after the arena has grown to the design's
//! size (typically during the first transformation), the steady-state loop
//! performs no further heap allocation. [`ScratchArena::capacity_signature`]
//! exposes the buffer capacities so tests can assert exactly that.

use crate::config::PrecondKind;
use crate::quadratic::{Assembled, AssemblyScratch};
use kraftwerk_field::{
    DensityScratch, ForceField, HybridWorkspace, MultigridWorkspace, ScalarMap, SpectralWorkspace,
};
use kraftwerk_geom::Vector;
use kraftwerk_sparse::{
    CgWorkspace, CsrMatrix, JacobiPreconditioner, Preconditioner, SsorPreconditioner,
};

/// The session's CG preconditioner slot: Jacobi refreshed in place (the
/// zero-allocation production path) or SSOR rebuilt per refresh (more
/// effective per iteration, but allocating — the watchdog ladder demotes
/// it to Jacobi on persistent CG stalls).
#[derive(Debug)]
pub(crate) enum SessionPrecond {
    /// Diagonal preconditioner, refreshed without allocation.
    Jacobi(JacobiPreconditioner),
    /// SSOR preconditioner; `None` until the first refresh.
    Ssor(Option<SsorPreconditioner>),
}

impl Default for SessionPrecond {
    fn default() -> Self {
        SessionPrecond::Jacobi(JacobiPreconditioner::default())
    }
}

impl SessionPrecond {
    /// Switches the slot to `kind`, dropping any stale state. Returns
    /// `true` when the kind actually changed (callers then invalidate the
    /// cached assembly so the next transform refreshes the slot).
    pub fn set_kind(&mut self, kind: PrecondKind) -> bool {
        let matches_kind = matches!(
            (&*self, kind),
            (SessionPrecond::Jacobi(_), PrecondKind::Jacobi)
                | (SessionPrecond::Ssor(_), PrecondKind::Ssor)
        );
        if !matches_kind {
            *self = match kind {
                PrecondKind::Jacobi => SessionPrecond::Jacobi(JacobiPreconditioner::default()),
                PrecondKind::Ssor => SessionPrecond::Ssor(None),
            };
        }
        !matches_kind
    }

    /// Rebuilds the preconditioner for a (re-assembled) matrix.
    pub fn refresh_from(&mut self, a: &CsrMatrix) {
        match self {
            SessionPrecond::Jacobi(p) => p.refresh_from(a),
            SessionPrecond::Ssor(slot) => *slot = Some(SsorPreconditioner::from_matrix(a, 1.0)),
        }
    }
}

impl Preconditioner for SessionPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            SessionPrecond::Jacobi(p) => p.apply(r, z),
            SessionPrecond::Ssor(Some(p)) => p.apply(r, z),
            SessionPrecond::Ssor(None) => {
                unreachable!("SSOR preconditioner applied before refresh_from")
            }
        }
    }
}

/// Reusable state for [`crate::PlacementSession::transform`], grouped by
/// pipeline phase. All fields are buffers whose *contents* are rebuilt
/// every iteration (or cached — see `asm_valid`); none carry semantic
/// state across iterations.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// COO staging + CSR build scratch for system assembly.
    pub(crate) assembly: AssemblyScratch,
    /// The assembled system (matrices and linear terms, storage reused).
    pub(crate) asm: Assembled,
    /// Whether `asm` is still valid for the current placement. Only ever
    /// `true` for placement-independent assemblies (pure clique model, no
    /// linearization), where the matrix can be cached across iterations.
    pub(crate) asm_valid: bool,
    /// The unweighted assembly the hold force is derived from when timing
    /// weights are active.
    pub(crate) hold_asm: Assembled,
    /// Whether `hold_asm` is valid (same caching rule as `asm_valid`).
    pub(crate) hold_valid: bool,
    /// Cached diagonal of `asm.cx`, rebuilt with the assembly.
    pub(crate) diag_x: Vec<f64>,
    /// Cached diagonal of `asm.cy`, rebuilt with the assembly.
    pub(crate) diag_y: Vec<f64>,
    /// Per-cell mean stiffness, sorted for the median estimate.
    pub(crate) stiffness: Vec<f64>,
    /// Raw (unscaled) field force per movable cell.
    pub(crate) raw: Vec<Vector>,
    /// Holding-force x component.
    pub(crate) hx: Vec<f64>,
    /// Holding-force y component.
    pub(crate) hy: Vec<f64>,
    /// Spring-force scratch (x), input to the hold computation.
    pub(crate) sx: Vec<f64>,
    /// Spring-force scratch (y).
    pub(crate) sy: Vec<f64>,
    /// Right-hand side of the x solve.
    pub(crate) bx: Vec<f64>,
    /// Right-hand side of the y solve.
    pub(crate) by: Vec<f64>,
    /// Movable-cell x coordinates before the solve (warm start).
    pub(crate) xs0: Vec<f64>,
    /// Movable-cell y coordinates before the solve.
    pub(crate) ys0: Vec<f64>,
    /// Preconditioner slot for the x system, refreshed with the assembly.
    pub(crate) px: SessionPrecond,
    /// Preconditioner slot for the y system.
    pub(crate) py: SessionPrecond,
    /// Conjugate-gradient workspace for the x solve.
    pub(crate) cg_x: CgWorkspace,
    /// Conjugate-gradient workspace for the y solve.
    pub(crate) cg_y: CgWorkspace,
    /// The density deviation grid, re-shaped in place each iteration.
    pub(crate) density: Option<ScalarMap>,
    /// Clamped cell rectangles for the density build.
    pub(crate) density_scratch: DensityScratch,
    /// Multigrid Poisson-solve grids.
    pub(crate) mg: MultigridWorkspace,
    /// Spectral Poisson-solve buffers (FFT plan + transform scratch).
    pub(crate) spectral: SpectralWorkspace,
    /// Hybrid Poisson-solve buffers (coarse DST seed + V-cycle grids).
    pub(crate) hybrid: HybridWorkspace,
    /// The force field written by the in-place Poisson solves.
    pub(crate) field: Option<ForceField>,
}

impl ScratchArena {
    /// Marks cached assemblies stale (placement-independent caching only
    /// survives while the net weights are unchanged).
    pub fn invalidate_assembly(&mut self) {
        self.asm_valid = false;
        self.hold_valid = false;
    }

    /// Capacities of every directly owned growable buffer, in a fixed
    /// order. Two equal signatures around a block of transformations prove
    /// the block allocated nothing new from the arena's pools.
    pub fn capacity_signature(&self) -> Vec<usize> {
        vec![
            self.diag_x.capacity(),
            self.diag_y.capacity(),
            self.stiffness.capacity(),
            self.raw.capacity(),
            self.hx.capacity(),
            self.hy.capacity(),
            self.sx.capacity(),
            self.sy.capacity(),
            self.bx.capacity(),
            self.by.capacity(),
            self.xs0.capacity(),
            self.ys0.capacity(),
            self.cg_x.capacity(),
            self.cg_y.capacity(),
            self.asm.dx.capacity(),
            self.asm.dy.capacity(),
        ]
    }
}
