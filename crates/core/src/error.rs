//! The unified error taxonomy of the placement pipeline.
//!
//! Every fallible `try_*` entry point across the workspace returns a
//! [`KraftwerkError`]: upstream crates' typed errors (parsing, building,
//! validation, the linear solver) are absorbed as variants, and the
//! downstream crates (legalization, floorplanning, timing) convert their
//! errors through the message-carrying variants via `From` impls defined
//! next to those error types. The CLI maps each variant to a distinct
//! process exit code through [`KraftwerkError::exit_code`].

use kraftwerk_netlist::format::ParseError;
use kraftwerk_netlist::{BuildError, ValidationError};
use kraftwerk_sparse::SolverError;
use std::error::Error;
use std::fmt;

/// Any error the placement pipeline can return.
///
/// The taxonomy is deliberately flat: one variant per pipeline stage, so
/// callers (and the CLI's exit-code mapping) can route on the stage that
/// failed without unwrapping nested enums.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KraftwerkError {
    /// Reading a netlist or placement file failed (I/O, not syntax).
    /// Carries the path and the OS error message.
    Io {
        /// The file that could not be read or written.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// The text format parser rejected the input.
    Parse(ParseError),
    /// Netlist construction rejected the input.
    Build(BuildError),
    /// Boundary validation ([`kraftwerk_netlist::Netlist::validate`])
    /// rejected the netlist.
    Validation(ValidationError),
    /// The linear solver rejected its inputs (non-finite right-hand side
    /// or dimension mismatch).
    Solver(SolverError),
    /// The transformation loop diverged and the watchdog exhausted its
    /// recovery ladder with no usable checkpoint to fall back to.
    Diverged {
        /// The transformation at which recovery was abandoned.
        iteration: usize,
        /// What tripped the watchdog last.
        reason: &'static str,
    },
    /// Row legalization failed; carries the rendered
    /// `kraftwerk_legalize::LegalizeError`.
    Legalize(String),
    /// Floorplanning failed; carries the rendered
    /// `kraftwerk_floorplan::FloorplanError`.
    Floorplan(String),
    /// Timing analysis failed; carries the rendered
    /// `kraftwerk_timing::TimingError`.
    Timing(String),
}

impl KraftwerkError {
    /// The process exit code the CLI maps this error to. Each pipeline
    /// stage has its own code so scripts can distinguish bad input (3–5)
    /// from runtime failures (6–9); `1` is reserved for uncategorized
    /// failures and `2` for usage errors.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            KraftwerkError::Io { .. } => 3,
            KraftwerkError::Parse(_) => 4,
            KraftwerkError::Build(_) | KraftwerkError::Validation(_) => 5,
            KraftwerkError::Solver(_) | KraftwerkError::Diverged { .. } => 6,
            KraftwerkError::Legalize(_) => 7,
            KraftwerkError::Floorplan(_) => 8,
            KraftwerkError::Timing(_) => 9,
        }
    }

    /// Short stage label (`"io"`, `"parse"`, …) for diagnostics and
    /// telemetry fields.
    #[must_use]
    pub fn stage(&self) -> &'static str {
        match self {
            KraftwerkError::Io { .. } => "io",
            KraftwerkError::Parse(_) => "parse",
            KraftwerkError::Build(_) => "build",
            KraftwerkError::Validation(_) => "validation",
            KraftwerkError::Solver(_) => "solver",
            KraftwerkError::Diverged { .. } => "diverged",
            KraftwerkError::Legalize(_) => "legalize",
            KraftwerkError::Floorplan(_) => "floorplan",
            KraftwerkError::Timing(_) => "timing",
        }
    }
}

impl fmt::Display for KraftwerkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KraftwerkError::Io { path, message } => write!(f, "{path}: {message}"),
            KraftwerkError::Parse(e) => write!(f, "parse error: {e}"),
            KraftwerkError::Build(e) => write!(f, "netlist error: {e}"),
            KraftwerkError::Validation(e) => write!(f, "{e}"),
            KraftwerkError::Solver(e) => write!(f, "solver error: {e}"),
            KraftwerkError::Diverged { iteration, reason } => write!(
                f,
                "placement diverged at transformation {iteration} ({reason}) with no recoverable checkpoint"
            ),
            KraftwerkError::Legalize(msg) => write!(f, "legalization error: {msg}"),
            KraftwerkError::Floorplan(msg) => write!(f, "floorplan error: {msg}"),
            KraftwerkError::Timing(msg) => write!(f, "timing error: {msg}"),
        }
    }
}

impl Error for KraftwerkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KraftwerkError::Parse(e) => Some(e),
            KraftwerkError::Build(e) => Some(e),
            KraftwerkError::Validation(e) => Some(e),
            KraftwerkError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for KraftwerkError {
    fn from(e: ParseError) -> Self {
        KraftwerkError::Parse(e)
    }
}

impl From<BuildError> for KraftwerkError {
    fn from(e: BuildError) -> Self {
        KraftwerkError::Build(e)
    }
}

impl From<ValidationError> for KraftwerkError {
    fn from(e: ValidationError) -> Self {
        KraftwerkError::Validation(e)
    }
}

impl From<SolverError> for KraftwerkError {
    fn from(e: SolverError) -> Self {
        KraftwerkError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_stage() {
        let errors = [
            KraftwerkError::Io { path: "x".into(), message: "gone".into() },
            KraftwerkError::Parse(ParseError { line: 1, message: "bad".into() }),
            KraftwerkError::Build(BuildError::MissingCoreRegion),
            KraftwerkError::Solver(SolverError::NonFinite { what: "rhs" }),
            KraftwerkError::Legalize("no rows".into()),
            KraftwerkError::Floorplan("blocks do not fit".into()),
            KraftwerkError::Timing("no endpoints".into()),
        ];
        let mut codes: Vec<i32> = errors.iter().map(KraftwerkError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "stages must map to distinct codes");
        assert!(codes.iter().all(|&c| c >= 3), "0..2 are reserved");
    }

    #[test]
    fn conversions_and_display_round_trip_the_stage() {
        let e: KraftwerkError = ParseError { line: 7, message: "nope".into() }.into();
        assert_eq!(e.stage(), "parse");
        assert!(e.to_string().contains("line 7"));
        let e: KraftwerkError = SolverError::NonFinite { what: "rhs" }.into();
        assert_eq!(e.exit_code(), 6);
        let e = KraftwerkError::Diverged { iteration: 12, reason: "hpwl explosion" };
        assert_eq!(e.exit_code(), 6);
        assert!(e.to_string().contains("transformation 12"));
    }
}
