//! Placer configuration.

use kraftwerk_sparse::CgOptions;

/// How nets are decomposed into quadratic two-point connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetModel {
    /// The paper's model (section 2.1): a `k`-pin net becomes a clique of
    /// `k(k-1)/2` edges of weight `w/k`. Exact but quadratic in `k`.
    Clique,
    /// Every pin connects to the net's current centroid (held fixed during
    /// the solve) with weight `w/(k-1)`. Linear in `k`; an approximation
    /// used for ablation and as the large-net fallback.
    Star,
    /// Clique up to `clique_threshold` pins, star beyond — the practical
    /// default that keeps huge (clock-like) nets from blowing up the
    /// matrix.
    Hybrid {
        /// Largest net degree still expanded as a clique.
        clique_threshold: usize,
    },
    /// Bound-to-bound (Coloquinte/Kraftwerk2 style): each pin connects to
    /// the net's current extreme pins per axis with weight
    /// `w/(2(k−1)·len)`, so the model's gradient at the reference
    /// placement equals the exact HPWL gradient for every degree while
    /// the matrix stays linear in `k`. The edge set is rebuilt from the
    /// previous placement each transformation.
    B2B,
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::Hybrid {
            clique_threshold: 30,
        }
    }
}

/// Which Poisson solver computes the force field.
///
/// The fallback ladder runs `Spectral/Hybrid → Multigrid → Direct`: the
/// watchdog demotes one rung at a time when a run keeps tripping, and
/// every rung solves the same discrete system (the spectral, hybrid and
/// multigrid backends share their solve grid, charge deposit and force
/// sampling), so a demotion never introduces a force discontinuity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FieldSolverKind {
    /// Geometric multigrid (fast; the production default).
    #[default]
    Multigrid,
    /// Exact superposition of equation (9) (`O(bins²)`; the reference,
    /// for validation and small designs).
    Direct,
    /// Iteration-free DST/FFT solve of the multigrid backend's discrete
    /// system (`O(m² log m)`, no convergence tolerance; the fastest path
    /// on large grids).
    Spectral,
    /// Multigrid V-cycles seeded by a half-resolution spectral solve
    /// (FMG-style): the spectral seed captures the low-frequency
    /// potential for free, cutting cycles versus a cold start.
    Hybrid,
}

/// The ISSUE/CLI name for the force-field backend choice: selectable as
/// `--poisson <direct|multigrid|spectral|hybrid>` or the `KRAFTWERK_POISSON`
/// environment variable.
pub type PoissonBackend = FieldSolverKind;

impl FieldSolverKind {
    /// Parses a backend name as used by the CLI and the
    /// `KRAFTWERK_POISSON` environment variable.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "multigrid" => Some(Self::Multigrid),
            "direct" => Some(Self::Direct),
            "spectral" => Some(Self::Spectral),
            "hybrid" => Some(Self::Hybrid),
            _ => None,
        }
    }

    /// The backend's CLI/telemetry name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Multigrid => "multigrid",
            Self::Direct => "direct",
            Self::Spectral => "spectral",
            Self::Hybrid => "hybrid",
        }
    }

    /// Default backend: `KRAFTWERK_POISSON` when set to a valid name,
    /// multigrid otherwise. Explicit config or `--poisson` flags override
    /// the environment.
    #[must_use]
    pub fn from_env() -> Self {
        std::env::var("KRAFTWERK_POISSON")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }
}

/// Which preconditioner the per-transformation conjugate-gradient solves
/// use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecondKind {
    /// Diagonal (Jacobi) preconditioning — cheap, refreshed in place, the
    /// production default.
    #[default]
    Jacobi,
    /// SSOR preconditioning — fewer CG iterations per solve but rebuilt
    /// (with allocation) whenever the system matrix changes; the watchdog
    /// demotes it to Jacobi when CG repeatedly fails to converge.
    Ssor,
}

/// Numerical-guardrail controls for the [`crate::PlacementSession`]
/// watchdog.
///
/// The watchdog inspects every placement transformation. When a check
/// trips it rolls the session back to the best-so-far checkpoint, damps
/// the force step, escalates down the solver fallback ladder
/// (SSOR → Jacobi preconditioning, multigrid → direct field solve) and
/// retries, up to [`max_recoveries`](Self::max_recoveries) times before
/// the run gives up with the checkpointed result.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Master switch. Disabled, transformations run unguarded (the
    /// pre-watchdog behaviour).
    pub enabled: bool,
    /// Trip when the post-transformation HPWL exceeds this multiple of
    /// the best HPWL seen at the same or better density. Guards against
    /// slow blow-ups the displacement check cannot see.
    pub hpwl_explosion_ratio: f64,
    /// Trip when the realized per-cell displacement of a held
    /// transformation exceeds this fraction of the core diagonal (a
    /// healthy step is bounded by the trust region at a small fraction
    /// of the die).
    pub max_step_fraction: f64,
    /// Trip after this many consecutive transformations in which both CG
    /// solves hit their iteration cap without converging. `0` disables
    /// the streak check.
    pub cg_stall_streak: usize,
    /// Recovery attempts (rollback + damp + ladder step) per trip site
    /// before the run gives up with the checkpointed result.
    pub max_recoveries: usize,
    /// Optional wall-clock budget in seconds for a whole run; exceeded,
    /// the run stops with the best-so-far placement and
    /// `RunHealth::budget_exhausted` set. **Off by default** because a
    /// wall-clock cut-off makes results machine-dependent and breaks the
    /// bitwise determinism guarantee.
    ///
    /// When [`deadline`](Self::deadline) is unset, the budget is resolved
    /// into a monotonic deadline once, when the session starts; the
    /// deadline is then checked before every transformation.
    pub wall_clock_budget: Option<f64>,
    /// Optional absolute monotonic deadline for a whole run. Takes
    /// precedence over [`wall_clock_budget`](Self::wall_clock_budget),
    /// and — unlike a relative budget — is shared verbatim by every
    /// session built from the same config, so a multilevel V-cycle (or a
    /// serving daemon handing one config to retries) enforces one
    /// wall-clock cut-off across all its levels rather than restarting
    /// the clock per level.
    pub deadline: Option<std::time::Instant>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            hpwl_explosion_ratio: 10.0,
            max_step_fraction: 0.35,
            cg_stall_streak: 8,
            max_recoveries: 3,
            wall_clock_budget: None,
            deadline: None,
        }
    }
}

impl WatchdogConfig {
    /// The effective monotonic deadline for a session starting *now*: the
    /// explicit [`deadline`](Self::deadline) when set, otherwise
    /// [`wall_clock_budget`](Self::wall_clock_budget) seconds from now
    /// (non-finite or negative budgets resolve to an already-expired
    /// deadline so a nonsense budget fails loudly instead of silently
    /// running unbounded).
    #[must_use]
    pub fn resolve_deadline(&self) -> Option<std::time::Instant> {
        self.deadline.or_else(|| {
            let budget = self.wall_clock_budget?;
            let now = std::time::Instant::now();
            Some(
                std::time::Duration::try_from_secs_f64(budget)
                    .ok()
                    .and_then(|d| now.checked_add(d))
                    .unwrap_or(now),
            )
        })
    }
}

/// Parameters of the Kraftwerk iteration.
///
/// The paper exposes a single user knob, `K` (section 4.1): the maximum
/// additional force per transformation equals the pull of a unit-weight
/// two-pin net of length `K·(W+H)`. `K = 0.2` is the paper's standard
/// mode, `K = 1.0` its fast mode.
#[derive(Debug, Clone, PartialEq)]
pub struct KraftwerkConfig {
    /// Force strength parameter `K`.
    pub k: f64,
    /// Hard cap on placement transformations.
    pub max_transformations: usize,
    /// Density grid bins along the longer core edge; `0` picks
    /// `clamp(2·√cells, 16, 192)` automatically.
    pub grid_bins: usize,
    /// Divides the automatic grid resolution (fast mode trades field
    /// resolution for speed). `1.0` keeps the automatic choice.
    pub grid_coarsening: f64,
    /// Net decomposition model.
    pub net_model: NetModel,
    /// GORDIAN-L net-weight linearization (section 4.1 cites \[14\]): edge
    /// weights are divided by the current edge length per coordinate,
    /// turning the effective objective from quadratic into linear wire
    /// length.
    pub linearization: bool,
    /// Linearization length floor as a fraction of `W + H`. The floor must
    /// stay above the typical cell pitch: overlapping cells have
    /// zero-length nets, and without a generous floor their reweighted
    /// springs become arbitrarily stiff and lock the overlap in place.
    pub linearization_epsilon: f64,
    /// Conjugate-gradient controls for the two linear solves per
    /// transformation.
    pub cg: CgOptions,
    /// Force-field solver choice.
    pub field_solver: FieldSolverKind,
    /// Stopping criterion factor: stop when no empty square larger than
    /// this multiple of the average cell area remains (paper: 4.0).
    pub stop_empty_square_factor: f64,
    /// Wire-length relaxation: the fraction of the holding force released
    /// each transformation, letting the springs pull cells back toward the
    /// (linearized) wire-length optimum while the density forces push them
    /// apart. `0.0` freezes the placement wherever the density flow left
    /// it; values around `0.05–0.2` trade spreading speed for wire length.
    pub relaxation: f64,
    /// Secondary stop: give up when the largest-empty-square area has not
    /// improved by at least 1% over this many consecutive transformations
    /// (guards low-utilization designs where the paper criterion can
    /// never fire). `0` disables.
    pub stall_window: usize,
    /// Worker threads for the data-parallel kernels. `0` keeps the
    /// current global setting (the `KRAFTWERK_THREADS` environment
    /// variable, falling back to the machine's parallelism); any other
    /// value is applied via [`kraftwerk_par::set_threads`] when a session
    /// starts. Results are bitwise identical at every setting.
    pub threads: usize,
    /// Preconditioner for the per-transformation CG solves.
    pub precond: PrecondKind,
    /// Numerical-guardrail (watchdog) controls.
    pub watchdog: WatchdogConfig,
    /// Fault-injection knob: multiplies the per-transformation force
    /// scale, and any value other than exactly `1.0` also bypasses the
    /// trust region so the injected divergence is observable. `1.0` (the
    /// default) is bit-for-bit the unperturbed pipeline. Exists to
    /// exercise the watchdog's divergence detection and recovery from
    /// tests and the CLI (`--force-scale`); never set it in production.
    pub force_scale_boost: f64,
    /// Capture downsampled density/potential-field and cell-position
    /// snapshots into the trace stream every this many transformations
    /// (plus the first one). `0` (the default) disables snapshots; any
    /// value only takes effect while a trace sink is installed, so the
    /// untraced hot path is unaffected either way.
    pub snapshot_every: usize,
}

impl KraftwerkConfig {
    /// The paper's standard mode, `K = 0.2`.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            k: 0.05,
            max_transformations: 120,
            grid_bins: 0,
            grid_coarsening: 1.0,
            net_model: NetModel::default(),
            linearization: true,
            linearization_epsilon: 0.05,
            cg: CgOptions {
                max_iterations: 300,
                rel_tolerance: 1e-6,
                abs_tolerance: 1e-12,
            },
            field_solver: FieldSolverKind::from_env(),
            relaxation: 0.05,
            stop_empty_square_factor: 4.0,
            stall_window: 16,
            threads: 0,
            precond: PrecondKind::Jacobi,
            watchdog: WatchdogConfig::default(),
            force_scale_boost: 1.0,
            snapshot_every: 0,
        }
    }

    /// The paper's fast mode (section 6.1: about a third of the standard
    /// mode's runtime at ~6% wire-length cost). This reproduction gets
    /// the speed from per-iteration cost — a coarser density grid, looser
    /// solver tolerances, and a relaxed stopping criterion — rather than
    /// a larger `K` (see DESIGN.md §7 on the force-scale calibration).
    #[must_use]
    pub fn fast() -> Self {
        let std = Self::standard();
        Self {
            k: 0.05,
            max_transformations: 60,
            cg: CgOptions {
                max_iterations: 150,
                rel_tolerance: 1e-4,
                abs_tolerance: 1e-12,
            },
            grid_coarsening: 1.15,
            stop_empty_square_factor: 8.0,
            stall_window: 8,
            ..std
        }
    }

    /// Overrides `K` (builder style).
    #[must_use]
    pub fn with_k(mut self, k: f64) -> Self {
        self.k = k;
        self
    }

    /// Overrides the net model (builder style).
    #[must_use]
    pub fn with_net_model(mut self, net_model: NetModel) -> Self {
        self.net_model = net_model;
        self
    }

    /// Overrides the field solver (builder style).
    #[must_use]
    pub fn with_field_solver(mut self, field_solver: FieldSolverKind) -> Self {
        self.field_solver = field_solver;
        self
    }

    /// Overrides the worker-thread count (builder style); `0` keeps the
    /// global setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the snapshot cadence (builder style); `0` disables
    /// mid-run field snapshots.
    #[must_use]
    pub fn with_snapshot_every(mut self, snapshot_every: usize) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// Effective density-grid resolution for a given cell count.
    #[must_use]
    pub fn grid_bins_for(&self, num_cells: usize) -> usize {
        if self.grid_bins > 0 {
            self.grid_bins
        } else {
            let auto = ((num_cells as f64).sqrt() * 2.0 / self.grid_coarsening.max(0.1)).round();
            (auto as usize).clamp(16, 192)
        }
    }
}

impl Default for KraftwerkConfig {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_and_fast_match_the_paper() {
        assert!(KraftwerkConfig::standard().k > 0.0);
        // Fast mode trades per-iteration cost (coarser grid, looser
        // solves, laxer stopping) for speed.
        assert!(KraftwerkConfig::fast().grid_coarsening > KraftwerkConfig::standard().grid_coarsening);
        assert!(KraftwerkConfig::fast().cg.rel_tolerance > KraftwerkConfig::standard().cg.rel_tolerance);
        assert!(
            KraftwerkConfig::fast().stop_empty_square_factor
                > KraftwerkConfig::standard().stop_empty_square_factor
        );
        assert_eq!(KraftwerkConfig::standard().stop_empty_square_factor, 4.0);
        assert_eq!(KraftwerkConfig::default(), KraftwerkConfig::standard());
    }

    #[test]
    fn builder_overrides() {
        let c = KraftwerkConfig::standard()
            .with_k(0.5)
            .with_net_model(NetModel::Star)
            .with_field_solver(FieldSolverKind::Direct);
        assert_eq!(c.k, 0.5);
        assert_eq!(c.net_model, NetModel::Star);
        assert_eq!(c.field_solver, FieldSolverKind::Direct);
    }

    #[test]
    fn automatic_grid_resolution_scales_with_design_size() {
        let c = KraftwerkConfig::standard();
        assert_eq!(c.grid_bins_for(64), 16);
        assert_eq!(c.grid_bins_for(2500), 100);
        assert_eq!(c.grid_bins_for(1_000_000), 192);
        let fixed = KraftwerkConfig {
            grid_bins: 40,
            ..KraftwerkConfig::standard()
        };
        assert_eq!(fixed.grid_bins_for(1_000_000), 40);
    }

    #[test]
    fn watchdog_defaults_are_deterministic_and_enabled() {
        let c = KraftwerkConfig::standard();
        assert!(c.watchdog.enabled);
        assert!(c.watchdog.wall_clock_budget.is_none(), "wall clock breaks determinism");
        assert_eq!(c.force_scale_boost, 1.0);
        assert_eq!(c.precond, PrecondKind::Jacobi);
        assert!(c.watchdog.max_recoveries > 0);
    }

    #[test]
    fn default_net_model_is_hybrid() {
        assert_eq!(NetModel::default(), NetModel::Hybrid { clique_threshold: 30 });
    }

    #[test]
    fn poisson_backend_names_round_trip() {
        for kind in [
            FieldSolverKind::Multigrid,
            FieldSolverKind::Direct,
            FieldSolverKind::Spectral,
            FieldSolverKind::Hybrid,
        ] {
            assert_eq!(FieldSolverKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FieldSolverKind::parse(" Spectral "), Some(FieldSolverKind::Spectral));
        assert_eq!(FieldSolverKind::parse("fft"), None);
        // The alias is the same type, so configs built either way agree.
        let via_alias: PoissonBackend = PoissonBackend::Spectral;
        assert_eq!(via_alias, FieldSolverKind::Spectral);
    }
}
