//! **Ablations A1–A3** (DESIGN.md) — the design choices the paper leaves
//! implicit, measured.
//!
//! * A1 `--solvers` — direct superposition vs multigrid Poisson solve:
//!   field accuracy (vs the exact reference) and runtime per grid size.
//! * A2 `--models` — clique vs star vs hybrid net models, and GORDIAN-L
//!   linearization on/off, measured end to end on legalized wire length.
//! * A3 `--maps` — congestion- and heat-driven placement vs plain mode:
//!   overflow / peak temperature / wire-length trade-off.
//! * A4 `--detail` — the detailed-placement ladder (Abacus, refinement,
//!   Hungarian window assignment).
//! * A5 `--multilevel` — clustered placement vs flat placement.
//!
//! With no flag, all three run.
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin ablation
//! ```

use kraftwerk_bench::run_kraftwerk;
use kraftwerk_congestion::{congestion_map, demand_for_session, peak, routing_demand_map, thermal_map, total_overflow};
use kraftwerk_core::{FieldSolverKind, KraftwerkConfig, NetModel, PlacementSession};
use kraftwerk_field::{density_map, DirectSolver, FieldSolver, MultigridSolver};
use kraftwerk_netlist::synth::{generate, SynthConfig};
use kraftwerk_netlist::metrics;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let all = args.len() <= 1;
    if all || args.iter().any(|a| a == "--solvers") {
        solvers();
    }
    if all || args.iter().any(|a| a == "--models") {
        models();
    }
    if all || args.iter().any(|a| a == "--maps") {
        maps();
    }
    if all || args.iter().any(|a| a == "--detail") {
        detail();
    }
    if all || args.iter().any(|a| a == "--multilevel") {
        multilevel();
    }
}

/// A5: multilevel (clustered) placement — the paper's "larger netlists
/// in less time" extension.
fn multilevel() {
    use kraftwerk_core::{place_multilevel, GlobalPlacer, MultilevelConfig};
    use kraftwerk_legalize::{legalize, refine};
    let console = kraftwerk_bench::console();
    console.info("A5: multilevel placement (cluster -> place coarse -> expand -> refine)");
    let nl = generate(&SynthConfig::with_size("ablation_ml", 6000, 7200, 40));
    let finish = |p: &kraftwerk_netlist::Placement| {
        let mut l = legalize(&nl, p).expect("legalizable");
        refine(&nl, &mut l, 2);
        metrics::hpwl(&nl, &l)
    };
    let t0 = std::time::Instant::now();
    let flat = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl);
    let t_flat = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let ml = place_multilevel(
        &nl,
        KraftwerkConfig::standard(),
        &MultilevelConfig {
            coarsest_movable: 1500,
            ..MultilevelConfig::default()
        },
    );
    let t_ml = t0.elapsed().as_secs_f64();
    let (flat_wire, ml_wire) = (finish(&flat.placement), finish(&ml.placement));
    console.info(format!("  flat:       wire {flat_wire:>10.0}  {t_flat:>6.1} s"));
    console.info(format!(
        "  multilevel: wire {ml_wire:>10.0}  {t_ml:>6.1} s  ({:+.1}% wire, {:.2}x speed)",
        100.0 * (ml_wire - flat_wire) / flat_wire,
        t_flat / t_ml
    ));
    console.info("");
}

/// A4: the detailed-placement ladder — what each stage after global
/// placement recovers.
fn detail() {
    use kraftwerk_legalize::{legalize, legalize_tetris, optimize_windows, refine};
    use kraftwerk_netlist::metrics;
    let console = kraftwerk_bench::console();
    console.info("A4: detailed placement ladder (HPWL after each stage)");
    let nl = generate(&SynthConfig::with_size("ablation_detail", 3000, 3600, 28));
    let global = kraftwerk_core::GlobalPlacer::new(KraftwerkConfig::standard())
        .place(&nl)
        .placement;
    console.info(format!("  global:          {:>10.0}", metrics::hpwl(&nl, &global)));
    let tetris = legalize_tetris(&nl, &global).expect("legalizable");
    console.info(format!(
        "  tetris:          {:>10.0}  (displacement {:>9.0})",
        metrics::hpwl(&nl, &tetris),
        global.total_displacement(&tetris)
    ));
    let mut p = legalize(&nl, &global).expect("legalizable");
    console.info(format!(
        "  abacus:          {:>10.0}  (displacement {:>9.0})",
        metrics::hpwl(&nl, &p),
        global.total_displacement(&p)
    ));
    refine(&nl, &mut p, 2);
    console.info(format!("  + refine:        {:>10.0}", metrics::hpwl(&nl, &p)));
    let gain = optimize_windows(&nl, &mut p, 6);
    console.info(format!("  + windows:       {:>10.0}  (window pass gained {gain:.0})", metrics::hpwl(&nl, &p)));
    refine(&nl, &mut p, 1);
    console.info(format!("  + refine again:  {:>10.0}", metrics::hpwl(&nl, &p)));
    console.info("");
}

/// A1: field solver accuracy and speed.
fn solvers() {
    let console = kraftwerk_bench::console();
    console.info("A1: force-field solvers — multigrid vs direct superposition");
    console.info(format!(
        "{:>6} | {:>12} {:>12} | {:>9} {:>9}",
        "grid", "direct [ms]", "mgrid [ms]", "rel.err", "cosine"
    ));
    let nl = generate(&SynthConfig::with_size("ablation_field", 2000, 2400, 20));
    let placement = {
        // A mid-flight placement: half spread.
        let mut s = PlacementSession::new(&nl, KraftwerkConfig::standard());
        for _ in 0..6 {
            s.transform();
        }
        s.placement().clone()
    };
    for bins in [16usize, 32, 48, 64, 96] {
        let ny = (bins / 4).max(8);
        let density = density_map(&nl, &placement, bins, ny);
        let t0 = std::time::Instant::now();
        let exact = DirectSolver::new().solve(&density);
        let t_direct = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = std::time::Instant::now();
        let fast = MultigridSolver::new().solve(&density);
        let t_mg = t0.elapsed().as_secs_f64() * 1e3;
        let mut err = 0.0;
        let mut base = 0.0;
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for iy in 1..ny - 1 {
            for ix in 1..bins - 1 {
                let c = density.bin_center(ix, iy);
                let a = fast.force_at(c);
                let b = exact.force_at(c);
                err += (a - b).norm_sq();
                base += b.norm_sq();
                dot += a.dot(b);
                na += a.norm_sq();
                nb += b.norm_sq();
            }
        }
        console.info(format!(
            "{:>6} | {:>12.2} {:>12.2} | {:>9.3} {:>9.4}",
            format!("{bins}x{ny}"),
            t_direct,
            t_mg,
            (err / base).sqrt(),
            dot / (na.sqrt() * nb.sqrt()),
        ));
    }
    console.info("");
}

/// A2: net model and linearization choices, end to end.
fn models() {
    let console = kraftwerk_bench::console();
    console.info("A2: net model / linearization ablation (legalized wire length, CPU)");
    console.info(format!("{:<26} | {:>10} {:>8}", "variant", "wire [m]", "CPU [s]"));
    let nl = generate(&SynthConfig::with_size("ablation_model", 3000, 3600, 28));
    let variants: Vec<(&str, KraftwerkConfig)> = vec![
        ("hybrid + linearization", KraftwerkConfig::standard()),
        (
            "clique + linearization",
            KraftwerkConfig::standard().with_net_model(NetModel::Clique),
        ),
        (
            "star + linearization",
            KraftwerkConfig::standard().with_net_model(NetModel::Star),
        ),
        (
            "hybrid, quadratic",
            KraftwerkConfig {
                linearization: false,
                ..KraftwerkConfig::standard()
            },
        ),
        (
            "hybrid + direct field",
            KraftwerkConfig::standard().with_field_solver(FieldSolverKind::Direct),
        ),
    ];
    for (label, cfg) in variants {
        let run = run_kraftwerk(&nl, cfg);
        console.info(format!(
            "{:<26} | {:>10.4} {:>8.1}{}",
            label,
            run.wirelength_m,
            run.seconds,
            if run.legal { "" } else { "  (ILLEGAL)" }
        ));
    }
    console.info("");
}

/// A3: congestion- and heat-driven modes.
fn maps() {
    let console = kraftwerk_bench::console();
    console.info("A3: congestion- and heat-driven placement (section 5 modes)");
    let base = generate(&SynthConfig::with_size("ablation_maps", 2000, 2400, 20));
    let n = base.num_movable();
    // A hot cluster so the heat map is not just the cell density.
    let nl = base.with_powers(|id, cell| {
        if (n / 3..n / 3 + n / 10).contains(&id.index()) {
            cell.power() * 25.0
        } else {
            cell.power()
        }
    });
    let cfg = KraftwerkConfig::standard();
    let (nx, ny) = PlacementSession::new(&nl, cfg.clone()).grid_dims();

    let plain = run_kraftwerk(&nl, cfg.clone());
    let tracks = 0.6 * routing_demand_map(&nl, &plain.placement, nx, ny).max();
    let plain_overflow = total_overflow(&congestion_map(&nl, &plain.placement, nx, ny, tracks));
    let plain_peak = peak(&thermal_map(&nl, &plain.placement, nx, ny));
    console.info(format!(
        "{:<18} | wire {:>8.4} m | overflow {:>9.0} | peak temp {:>6.2}",
        "plain", plain.wirelength_m, plain_overflow, plain_peak
    ));

    for (label, heat) in [("congestion-driven", false), ("heat-driven", true)] {
        let mut session = PlacementSession::new(&nl, cfg.clone());
        for _ in 0..cfg.max_transformations {
            let map = if heat {
                thermal_map(&nl, session.placement(), nx, ny)
            } else {
                congestion_map(&nl, session.placement(), nx, ny, tracks)
            };
            session.set_demand_map(demand_for_session(&map), if heat { 0.8 } else { 2.5 });
            session.transform();
            if session.is_converged() {
                break;
            }
        }
        let p = session.placement();
        let overflow = total_overflow(&congestion_map(&nl, p, nx, ny, tracks));
        let peak_t = peak(&thermal_map(&nl, p, nx, ny));
        console.info(format!(
            "{:<18} | wire {:>8.4} m | overflow {:>9.0} | peak temp {:>6.2}",
            label,
            metrics::hpwl(&nl, p) * kraftwerk_bench::UNITS_TO_METERS,
            overflow,
            peak_t
        ));
    }
    console.info("");
}
