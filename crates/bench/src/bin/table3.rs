//! **Table 3** — Timing results: longest path and CPU time.
//!
//! For the paper's five timing circuits, runs each placer without and
//! with timing optimization and reports the longest path (ns, Elmore
//! model with the paper's 242 pF/m and 25.5 kΩ/m) plus the CPU seconds of
//! the timing-driven flow. The timing-driven baselines iterate the same
//! criticality/net-weighting scheme around the baseline placers (the
//! TimberWolf-TD \[20\] / SPEED \[21\] pattern). Cached to
//! `bench_results/table3.csv` for Table 4.
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin table3             # all 5 circuits
//! cargo run --release -p kraftwerk-bench --bin table3 -- --quick  # <= 7000 cells
//! ```

use kraftwerk_baselines::{AnnealingConfig, GordianConfig};
use kraftwerk_bench::{
    lower_bound, run_annealing, run_baseline_timing, run_gordian, run_kraftwerk_timing, write_csv,
};
use kraftwerk_netlist::synth::mcnc;
use kraftwerk_timing::DelayModel;

fn main() {
    let console = kraftwerk_bench::console();
    let quick = std::env::args().any(|a| a == "--quick");
    let model = DelayModel::default();
    let circuits: Vec<_> = mcnc::TIMING_CIRCUITS
        .iter()
        .map(|name| {
            mcnc::TABLE1
                .iter()
                .find(|p| p.name == *name)
                .copied()
                .expect("timing circuit in table 1")
        })
        .filter(|p| !quick || p.cells <= 7000)
        .collect();

    console.info("Table 3: longest path without/with timing optimization [ns], CPU [s]");
    console.info(format!(
        "{:<12} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7}",
        "circuit", "TW w/o", "TW with", "CPU", "Go w/o", "Go with", "CPU", "Our w/o", "Our with", "CPU"
    ));
    let mut rows = Vec::new();
    for preset in circuits {
        let netlist = mcnc::by_name(preset.name);
        let bound = lower_bound(&netlist, model);

        let sa = run_baseline_timing(&netlist, model, 2, |weights| {
            run_annealing(
                &netlist,
                AnnealingConfig {
                    net_weights: weights,
                    ..AnnealingConfig::heavy()
                },
            )
        });
        let gq = run_baseline_timing(&netlist, model, 3, |weights| {
            run_gordian(
                &netlist,
                GordianConfig {
                    net_weights: weights,
                    ..GordianConfig::default()
                },
            )
        });
        let kw = run_kraftwerk_timing(&netlist, model);

        console.info(format!(
            "{:<12} | {:>8.2} {:>8.2} {:>7.1} | {:>8.2} {:>8.2} {:>7.1} | {:>8.2} {:>8.2} {:>7.1}",
            preset.name,
            sa.without_ns, sa.with_ns, sa.seconds,
            gq.without_ns, gq.with_ns, gq.seconds,
            kw.without_ns, kw.with_ns, kw.seconds,
        ));
        rows.push(vec![
            preset.name.to_owned(),
            format!("{bound:.4}"),
            format!("{:.4}", sa.without_ns),
            format!("{:.4}", sa.with_ns),
            format!("{:.3}", sa.seconds),
            format!("{:.4}", gq.without_ns),
            format!("{:.4}", gq.with_ns),
            format!("{:.3}", gq.seconds),
            format!("{:.4}", kw.without_ns),
            format!("{:.4}", kw.with_ns),
            format!("{:.3}", kw.seconds),
        ]);
    }
    write_csv(
        "table3.csv",
        "circuit;bound;tw_wo;tw_with;tw_cpu;go_wo;go_with;go_cpu;our_wo;our_with;our_cpu",
        &rows,
    );
    console.info("\ncached to bench_results/table3.csv (table4 derives from it)");
}
