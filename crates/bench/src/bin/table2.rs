//! **Table 2** — Comparisons to other approaches: wire-length
//! improvement and relative CPU times.
//!
//! Derived from the Table 1 runs (`bench_results/table1.csv`; run the
//! `table1` binary first, or this tool tells you to). Positive
//! improvement percentages mean the Kraftwerk flow is better, and
//! relative CPU below 1.0 means it is faster — the paper's conventions.
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin table2
//! ```

use kraftwerk_bench::read_csv;

fn main() {
    let console = kraftwerk_bench::console();
    let Some(rows) = read_csv("table1.csv") else {
        console.warn("bench_results/table1.csv not found — run the `table1` binary first");
        std::process::exit(1);
    };
    console.info("Table 2: wire-length improvement of our approach [%] and relative CPU");
    console.info(format!(
        "{:<12} | {:>9} {:>8} | {:>9} {:>8}",
        "circuit", "%impr TW", "rel CPU", "%impr Go", "rel CPU"
    ));
    let mut sums = [0.0f64; 4];
    let mut count = 0.0;
    for row in &rows {
        let f = |i: usize| -> f64 { row[i].parse().expect("numeric csv field") };
        let (tw_wire, tw_cpu, go_wire, go_cpu, our_wire, our_cpu) =
            (f(2), f(3), f(4), f(5), f(6), f(7));
        let impr_tw = 100.0 * (tw_wire - our_wire) / tw_wire;
        let impr_go = 100.0 * (go_wire - our_wire) / go_wire;
        let rel_tw = our_cpu / tw_cpu;
        let rel_go = our_cpu / go_cpu;
        console.info(format!(
            "{:<12} | {:>9.1} {:>8.2} | {:>9.1} {:>8.2}",
            row[0], impr_tw, rel_tw, impr_go, rel_go
        ));
        sums[0] += impr_tw;
        sums[1] += rel_tw;
        sums[2] += impr_go;
        sums[3] += rel_go;
        count += 1.0;
    }
    console.info(format!(
        "{:<12} | {:>9.1} {:>8.2} | {:>9.1} {:>8.2}",
        "average",
        sums[0] / count,
        sums[1] / count,
        sums[2] / count,
        sums[3] / count
    ));
    console.info("\n(paper: +7.9% vs TimberWolf, +6.6% vs Gordian/Domino on average)");
}
