//! **Experiments E5/E6** — the fast mode claims of section 6.1.
//!
//! E5: fast mode (`K = 1.0` in the paper; see DESIGN.md for this
//! reproduction's fast-mode calibration) computes a placement in about a
//! third of the standard mode's time at ~6% average wire-length cost.
//!
//! E6 (`--large`): a legal placement for a 210,000-cell circuit within
//! 10 minutes using the fast mode.
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin fastmode            # E5
//! cargo run --release -p kraftwerk-bench --bin fastmode -- --quick # E5, <= 7000 cells
//! cargo run --release -p kraftwerk-bench --bin fastmode -- --large # E6
//! cargo run --release -p kraftwerk-bench --bin fastmode -- --json  # + BENCH_place.json
//! ```
//!
//! With `--json`, both the standard-mode and fast-mode runs are recorded
//! under a [`kraftwerk_trace::RunRecorder`] and written (netlist, threads,
//! per-phase wall seconds, wire length, iteration count) to
//! `BENCH_place.json` in the working directory.

use kraftwerk_bench::{run_kraftwerk, run_kraftwerk_recorded, table1_circuits, write_bench_json};
use kraftwerk_core::KraftwerkConfig;
use kraftwerk_netlist::synth::{generate, mcnc};

fn main() {
    let console = kraftwerk_bench::console();
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--large") {
        run_large();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let circuits = table1_circuits(if quick { 7000 } else { usize::MAX });
    let mut json_runs = Vec::new();

    console.info("E5: standard (K=0.2) vs fast mode — wire length [m] and CPU [s]");
    console.info(format!(
        "{:<12} | {:>10} {:>8} | {:>10} {:>8} | {:>8} {:>8}",
        "circuit", "std wire", "std CPU", "fast wire", "fast CPU", "wire +%", "speedup"
    ));
    let mut wire_sum = 0.0;
    let mut speed_sum = 0.0;
    let mut count = 0.0;
    for preset in circuits {
        let netlist = mcnc::by_name(preset.name);
        let (std_run, fast_run) = if json {
            let (s, sr) = run_kraftwerk_recorded(&netlist, KraftwerkConfig::standard(), "standard");
            let (f, fr) = run_kraftwerk_recorded(&netlist, KraftwerkConfig::fast(), "fast");
            json_runs.push(sr);
            json_runs.push(fr);
            (s, f)
        } else {
            (
                run_kraftwerk(&netlist, KraftwerkConfig::standard()),
                run_kraftwerk(&netlist, KraftwerkConfig::fast()),
            )
        };
        let wire_pct = 100.0 * (fast_run.wirelength_m - std_run.wirelength_m) / std_run.wirelength_m;
        let speedup = std_run.seconds / fast_run.seconds;
        console.info(format!(
            "{:<12} | {:>10.4} {:>8.1} | {:>10.4} {:>8.1} | {:>8.1} {:>8.2}",
            preset.name,
            std_run.wirelength_m,
            std_run.seconds,
            fast_run.wirelength_m,
            fast_run.seconds,
            wire_pct,
            speedup,
        ));
        wire_sum += wire_pct;
        speed_sum += speedup;
        count += 1.0;
    }
    console.info(format!(
        "{:<12} | {:>31} | {:>8.1} {:>8.2}",
        "average",
        "",
        wire_sum / count,
        speed_sum / count
    ));
    if json {
        write_bench_json(&console, &json_runs);
    }
    console.info("\n(paper: fast mode is ~3x faster at ~6% wire-length cost)");
}

fn run_large() {
    let console = kraftwerk_bench::console();
    console.info("E6: 210,000-cell circuit, fast mode (paper: legal placement within 10 minutes)");
    let started = std::time::Instant::now();
    let netlist = generate(&mcnc::giant());
    console.info(format!(
        "generated {} cells / {} nets in {:.0}s",
        netlist.num_movable(),
        netlist.num_nets(),
        started.elapsed().as_secs_f64()
    ));
    let result = run_kraftwerk(&netlist, KraftwerkConfig::fast());
    console.info(format!(
        "fast-mode flow: wire {:.3} m, CPU {:.0}s, legal: {} — {}",
        result.wirelength_m,
        result.seconds,
        result.legal,
        if result.seconds <= 600.0 && result.legal {
            "within the paper's 10-minute budget"
        } else {
            "outside the paper's 10-minute budget"
        }
    ));
}
