//! **Table 4** — Relative timing results: exploitation of the
//! optimization potential and relative CPU requirements.
//!
//! Derived from the Table 3 runs (`bench_results/table3.csv`). For each
//! method, the exploitation is `(T_without − T_with) / (T_without −
//! lower_bound)` — the paper's normalization that cancels differences in
//! net/timing models. Relative CPU is each method's timing-flow CPU
//! divided by ours (values above 1 mean the compared method is slower).
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin table4
//! ```

use kraftwerk_bench::read_csv;

fn main() {
    let console = kraftwerk_bench::console();
    let Some(rows) = read_csv("table3.csv") else {
        console.warn("bench_results/table3.csv not found — run the `table3` binary first");
        std::process::exit(1);
    };
    console.info("Table 4: lower bound [ns], exploitation of optimization potential, relative CPU");
    console.info(format!(
        "{:<12} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "circuit", "bound", "TW expl", "rel CPU", "Go expl", "rel CPU", "Our expl", "rel CPU"
    ));
    let mut sums = [0.0f64; 5];
    let mut count = 0.0;
    for row in &rows {
        let f = |i: usize| -> f64 { row[i].parse().expect("numeric csv field") };
        let bound = f(1);
        let expl = |wo: f64, with: f64| {
            let pot = wo - bound;
            if pot <= 0.0 { 0.0 } else { (wo - with) / pot }
        };
        let (tw_e, go_e, our_e) = (expl(f(2), f(3)), expl(f(5), f(6)), expl(f(8), f(9)));
        let (tw_cpu, go_cpu, our_cpu) = (f(4), f(7), f(10));
        console.info(format!(
            "{:<12} {:>8.2} | {:>7.0}% {:>8.1} | {:>7.0}% {:>8.1} | {:>7.0}% {:>8.1}",
            row[0],
            bound,
            tw_e * 100.0,
            tw_cpu / our_cpu,
            go_e * 100.0,
            go_cpu / our_cpu,
            our_e * 100.0,
            1.0,
        ));
        sums[0] += tw_e;
        sums[1] += tw_cpu / our_cpu;
        sums[2] += go_e;
        sums[3] += go_cpu / our_cpu;
        sums[4] += our_e;
        count += 1.0;
    }
    console.info(format!(
        "{:<12} {:>8} | {:>7.0}% {:>8.1} | {:>7.0}% {:>8.1} | {:>7.0}% {:>8.1}",
        "average",
        "",
        100.0 * sums[0] / count,
        sums[1] / count,
        100.0 * sums[2] / count,
        sums[3] / count,
        100.0 * sums[4] / count,
        1.0,
    ));
    console.info("\n(paper: compared methods exploit up to 42% / 40%, ours 53% with less CPU)");
}
