//! Exports the trajectories behind the paper's narrative as CSV files in
//! `bench_results/`:
//!
//! * `convergence_<circuit>.csv` — per-transformation wire length, peak
//!   density, and largest-empty-square area ("each iteration makes the
//!   distribution of the cells more even", section 4.2);
//! * `tradeoff_<circuit>.csv` — the timing/area trade-off curve of the
//!   meet-requirements flow ("which timing can be achieved at which area
//!   cost", section 5).
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin curves
//! ```

use kraftwerk_bench::write_csv;
use kraftwerk_core::{GlobalPlacer, KraftwerkConfig, PlacementSession};
use kraftwerk_netlist::synth::mcnc;
use kraftwerk_timing::{meet_requirements, DelayModel, Sta};

fn main() {
    let console = kraftwerk_bench::console();
    for name in ["primary1", "struct"] {
        let netlist = mcnc::by_name(name);

        // Convergence trajectory.
        let mut session = PlacementSession::new(&netlist, KraftwerkConfig::standard());
        let mut rows = Vec::new();
        while session.iteration() < KraftwerkConfig::standard().max_transformations {
            let stats = session.transform();
            rows.push(vec![
                format!("{}", stats.iteration),
                format!("{:.1}", stats.hpwl),
                format!("{:.4}", stats.peak_density),
                format!("{:.1}", stats.empty_square_area),
                format!("{}", stats.cg_iterations),
            ]);
            if session.is_converged() || session.is_stalled() {
                break;
            }
        }
        let file = format!("convergence_{}.csv", name.replace('.', "_"));
        write_csv(&file, "iteration;hpwl;peak_density;empty_square;cg_iters", &rows);
        console.info(format!("{name}: {} transformations -> bench_results/{file}", rows.len()));

        // Timing/area trade-off curve.
        let model = DelayModel::default();
        let sta = Sta::new(&netlist, model).expect("synthetic circuits are acyclic");
        let base = GlobalPlacer::new(KraftwerkConfig::standard()).place(&netlist);
        let base_delay = sta.analyze(&base.placement).max_delay;
        let result = meet_requirements(
            &netlist,
            model,
            KraftwerkConfig::standard(),
            base_delay * 0.85,
            40,
        )
        .expect("synthetic circuits are acyclic");
        let rows: Vec<Vec<String>> = result
            .curve
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.iteration),
                    format!("{:.4}", p.max_delay),
                    format!("{:.1}", p.hpwl),
                ]
            })
            .collect();
        let file = format!("tradeoff_{}.csv", name.replace('.', "_"));
        write_csv(&file, "step;delay_ns;hpwl", &rows);
        console.info(format!(
            "{name}: requirement {:.2} ns met = {} ({} points) -> bench_results/{file}",
            result.requirement,
            result.met,
            result.curve.len()
        ));
    }
}
