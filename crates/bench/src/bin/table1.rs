//! **Table 1** — Benchmarks: wire length and CPU time.
//!
//! For every circuit of the paper's Table 1, runs the three flows
//! (TimberWolf-class annealing, GORDIAN-class quadratic partitioning, and
//! Kraftwerk in standard mode) through legalization and prints wire
//! length in meters and wall-clock CPU seconds. Results are cached to
//! `bench_results/table1.csv` for the derived Table 2.
//!
//! ```sh
//! cargo run --release -p kraftwerk-bench --bin table1            # all 9 circuits
//! cargo run --release -p kraftwerk-bench --bin table1 -- --quick # <= 7000 cells
//! cargo run --release -p kraftwerk-bench --bin table1 -- --json  # + BENCH_place.json
//! ```
//!
//! With `--json`, every Kraftwerk run is recorded under a
//! [`kraftwerk_trace::RunRecorder`] and the machine-readable measurements
//! (netlist, threads, per-phase wall seconds, wire length, iteration
//! count) are written to `BENCH_place.json` in the working directory.

use kraftwerk_baselines::{AnnealingConfig, GordianConfig};
use kraftwerk_bench::{
    run_annealing, run_gordian, run_kraftwerk, run_kraftwerk_recorded, table1_circuits,
    write_bench_json, write_csv,
};
use kraftwerk_core::KraftwerkConfig;
use kraftwerk_netlist::synth::mcnc;

fn main() {
    let console = kraftwerk_bench::console();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let circuits = table1_circuits(if quick { 7000 } else { usize::MAX });
    let mut json_runs = Vec::new();

    console.info("Table 1: wire length [m] and CPU [s] (legalized placements)");
    console.info(format!(
        "{:<12} {:>7} {:>7} | {:>10} {:>8} | {:>10} {:>8} | {:>10} {:>8}",
        "circuit", "#cells", "#nets", "TW wire", "TW CPU", "Go wire", "Go CPU", "Our wire", "Our CPU"
    ));
    let mut rows = Vec::new();
    for preset in circuits {
        let netlist = mcnc::by_name(preset.name);
        let sa = run_annealing(&netlist, AnnealingConfig::heavy());
        let gq = run_gordian(&netlist, GordianConfig::default());
        let kw = if json {
            let (result, run) = run_kraftwerk_recorded(&netlist, KraftwerkConfig::standard(), "standard");
            json_runs.push(run);
            result
        } else {
            run_kraftwerk(&netlist, KraftwerkConfig::standard())
        };
        assert!(sa.legal && gq.legal && kw.legal, "illegal result on {}", preset.name);
        console.info(format!(
            "{:<12} {:>7} {:>7} | {:>10.4} {:>8.1} | {:>10.4} {:>8.1} | {:>10.4} {:>8.1}",
            preset.name,
            preset.cells,
            preset.nets,
            sa.wirelength_m,
            sa.seconds,
            gq.wirelength_m,
            gq.seconds,
            kw.wirelength_m,
            kw.seconds,
        ));
        rows.push(vec![
            preset.name.to_owned(),
            format!("{}", preset.cells),
            format!("{:.6}", sa.wirelength_m),
            format!("{:.3}", sa.seconds),
            format!("{:.6}", gq.wirelength_m),
            format!("{:.3}", gq.seconds),
            format!("{:.6}", kw.wirelength_m),
            format!("{:.3}", kw.seconds),
        ]);
    }
    write_csv(
        "table1.csv",
        "circuit;cells;tw_wire;tw_cpu;go_wire;go_cpu;our_wire;our_cpu",
        &rows,
    );
    if json {
        write_bench_json(&console, &json_runs);
    }
    console.info("\ncached to bench_results/table1.csv (table2 derives from it)");
}
