//! `loadgen` — saturation load generator for the placement daemon.
//!
//! Spins up an in-process `kraftwerk-serve` daemon (or targets an
//! external one via `--addr`), then drives it with concurrent client
//! threads submitting placement jobs back to back. Reports throughput
//! (jobs/sec), latency percentiles (p50/p99), and the degraded/rejected
//! fractions per concurrency level.
//!
//! ```text
//! loadgen [--cells N] [--jobs N] [--clients 1,2,8] [--workers N]
//!         [--mode fast|standard|multilevel] [--addr host:port]
//!         [--latency-out jobs.jsonl]
//! ```
//!
//! With `--addr` the daemon is external and `--workers` is ignored;
//! without it each concurrency level gets a fresh in-process daemon with
//! `--workers` placement threads (default: the client count, the
//! saturation configuration the EXPERIMENTS.md recipe measures).
//!
//! `busy` rejections are retried after the daemon's `retry_after_ms`
//! hint — the load generator exercises the backpressure path rather than
//! treating it as failure; only transport errors and daemon-side error
//! frames count as failures.
//!
//! `--latency-out jobs.jsonl` appends one JSON record per completed job
//! (trace id, latency, server wall, queue depth at admission, outcome),
//! the input for the `kraftwerk inspect --service` dashboard. Every job
//! carries a generated `trace_id` so service records join to daemon-side
//! journals and run reports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kraftwerk_netlist::format::write_netlist;
use kraftwerk_netlist::synth::{generate, SynthConfig};
use kraftwerk_serve::{Client, Mode, PlaceOptions, ServeConfig, Server};

struct Args {
    cells: usize,
    jobs: usize,
    clients: Vec<usize>,
    workers: Option<usize>,
    mode: Mode,
    addr: Option<String>,
    deadline_s: f64,
    latency_out: Option<std::path::PathBuf>,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cells = flag(&argv, "--cells")
        .map(|v| v.parse().expect("--cells expects a number"))
        .unwrap_or(500);
    let jobs = flag(&argv, "--jobs")
        .map(|v| v.parse().expect("--jobs expects a number"))
        .unwrap_or(24);
    let clients = flag(&argv, "--clients")
        .map(|v| {
            v.split(',')
                .map(|c| c.trim().parse().expect("--clients expects numbers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 8]);
    let workers = flag(&argv, "--workers").map(|v| v.parse().expect("--workers expects a number"));
    let mode = flag(&argv, "--mode")
        .map(|v| Mode::parse(&v).expect("--mode expects fast|standard|multilevel"))
        .unwrap_or(Mode::Fast);
    let addr = flag(&argv, "--addr");
    let deadline_s = flag(&argv, "--deadline")
        .map(|v| v.parse().expect("--deadline expects seconds"))
        .unwrap_or(60.0);
    let latency_out = flag(&argv, "--latency-out").map(std::path::PathBuf::from);
    Args {
        cells,
        jobs,
        clients,
        workers,
        mode,
        addr,
        deadline_s,
        latency_out,
    }
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    degraded: AtomicU64,
    errors: AtomicU64,
    busy_retries: AtomicU64,
    next_job: AtomicUsize,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// One per-job service record as a JSONL line for `--latency-out` (the
/// `kraftwerk inspect --service` input format).
#[allow(clippy::too_many_arguments)]
fn job_record(
    id: &str,
    trace_id: &str,
    client_idx: usize,
    concurrency: usize,
    out: &kraftwerk_serve::JobOutcome,
    busy_retries: u64,
    start_ms: f64,
    end_ms: f64,
) -> String {
    let mut o = kraftwerk_trace::json::JsonObject::new();
    o.str_field("type", "job");
    o.str_field("id", id);
    o.str_field("trace_id", trace_id);
    o.u64_field("client", client_idx as u64);
    o.u64_field("concurrency", concurrency as u64);
    o.str_field("status", &out.status);
    o.f64_field("latency_ms", end_ms - start_ms);
    o.u64_field("server_wall_ms", out.wall_ms);
    o.f64_field("hpwl", out.hpwl);
    o.bool_field("retried", out.retried);
    o.u64_field("busy_retries", busy_retries);
    if let Some(depth) = out.queue_depth {
        o.u64_field("queue_depth", depth);
    }
    o.f64_field("start_ms", start_ms);
    o.f64_field("end_ms", end_ms);
    o.finish()
}

fn drive(
    addr: std::net::SocketAddr,
    args: &Args,
    concurrency: usize,
    netlist_text: Arc<String>,
) -> Vec<String> {
    let tally = Arc::new(Tally::default());
    let opts = PlaceOptions {
        mode: args.mode,
        deadline_s: Some(args.deadline_s),
        ..PlaceOptions::default()
    };
    let started = Instant::now();
    let mut threads = Vec::new();
    for client_idx in 0..concurrency {
        let tally = Arc::clone(&tally);
        let text = Arc::clone(&netlist_text);
        let opts = opts.clone();
        let total_jobs = args.jobs;
        threads.push(std::thread::spawn(move || {
            let mut latencies_ms: Vec<f64> = Vec::new();
            let mut records: Vec<(u64, String)> = Vec::new();
            let mut client = Client::connect(addr).expect("loadgen connect");
            loop {
                let job_idx = tally.next_job.fetch_add(1, Ordering::SeqCst);
                if job_idx >= total_jobs {
                    break;
                }
                let id = format!("load-c{client_idx}-j{job_idx}");
                let trace_id = format!("lg-{concurrency}.{id}");
                let mut opts = opts.clone();
                opts.trace_id = Some(trace_id.clone());
                let job_started = Instant::now();
                let mut job_busy_retries = 0u64;
                loop {
                    match client.place(&id, &text, &opts) {
                        Ok(out) if out.status == "busy" => {
                            tally.busy_retries.fetch_add(1, Ordering::Relaxed);
                            job_busy_retries += 1;
                            let backoff = out.retry_after_ms.unwrap_or(50);
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                        Ok(out) => {
                            match out.status.as_str() {
                                "ok" => tally.ok.fetch_add(1, Ordering::Relaxed),
                                "degraded" => tally.degraded.fetch_add(1, Ordering::Relaxed),
                                _ => tally.errors.fetch_add(1, Ordering::Relaxed),
                            };
                            let end_ms = started.elapsed().as_secs_f64() * 1e3;
                            let start_ms =
                                end_ms - job_started.elapsed().as_secs_f64() * 1e3;
                            latencies_ms.push(end_ms - start_ms);
                            records.push((
                                end_ms.to_bits(),
                                job_record(
                                    &id,
                                    &trace_id,
                                    client_idx,
                                    concurrency,
                                    &out,
                                    job_busy_retries,
                                    start_ms,
                                    end_ms,
                                ),
                            ));
                            break;
                        }
                        Err(e) => {
                            eprintln!("loadgen: transport error on {id}: {e}");
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
            (latencies_ms, records)
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    let mut records: Vec<(u64, String)> = Vec::new();
    for t in threads {
        let (lat, recs) = t.join().expect("client thread");
        latencies.extend(lat);
        records.extend(recs);
    }
    let wall_s = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let ok = tally.ok.load(Ordering::Relaxed);
    let degraded = tally.degraded.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let done = ok + degraded;
    println!(
        "clients={concurrency:<2} jobs={done:<4} wall={wall_s:>6.2}s  \
         jobs/s={:>6.2}  p50={:>7.1}ms  p99={:>7.1}ms  \
         degraded={:.1}%  errors={errors}  busy_retries={}",
        done as f64 / wall_s,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        if done > 0 { 100.0 * degraded as f64 / done as f64 } else { 0.0 },
        tally.busy_retries.load(Ordering::Relaxed),
    );
    // Completion order: positive-float bits sort like the floats.
    records.sort_by_key(|&(end_bits, _)| end_bits);
    records.into_iter().map(|(_, line)| line).collect()
}

fn main() {
    let args = parse_args();
    let netlist_text = Arc::new(write_netlist(&generate(&SynthConfig::with_size(
        "loadgen",
        args.cells,
        args.cells + args.cells / 4,
        (args.cells / 60).max(4),
    ))));
    println!(
        "loadgen: {} cells, {} jobs per level, mode {}, clients {:?}",
        args.cells,
        args.jobs,
        args.mode.name(),
        args.clients
    );
    let mut all_records: Vec<String> = Vec::new();
    if let Some(addr) = &args.addr {
        let addr: std::net::SocketAddr = addr.parse().expect("--addr expects host:port");
        for &concurrency in &args.clients {
            all_records.extend(drive(addr, &args, concurrency, Arc::clone(&netlist_text)));
        }
        write_latency_out(&args, &all_records);
        return;
    }
    for &concurrency in &args.clients {
        // A fresh daemon per level keeps the levels independent; workers
        // default to the client count so each level measures a matched
        // daemon (the saturation configuration).
        let server = Server::bind(ServeConfig {
            workers: args.workers.unwrap_or(concurrency),
            queue_capacity: (concurrency * 2).max(4),
            ..ServeConfig::default()
        })
        .expect("loadgen bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        all_records.extend(drive(addr, &args, concurrency, Arc::clone(&netlist_text)));
        handle.shutdown();
        let summary = join
            .join()
            .expect("server thread")
            .expect("server run");
        if summary.jobs_failed > 0 {
            eprintln!(
                "loadgen: daemon reported {} failed job(s) at {} clients",
                summary.jobs_failed, concurrency
            );
            std::process::exit(1);
        }
    }
    write_latency_out(&args, &all_records);
}

/// Writes the per-job record stream when `--latency-out` was given.
fn write_latency_out(args: &Args, records: &[String]) {
    let Some(path) = &args.latency_out else {
        return;
    };
    let mut text = records.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    match std::fs::write(path, text) {
        Ok(()) => println!("loadgen: wrote {} job record(s) to {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
