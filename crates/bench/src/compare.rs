//! Bench regression gate: diff a fresh run against a committed
//! `BENCH_place.json` baseline.
//!
//! The gate reruns every baseline circuit that (a) is one of the Table 1
//! presets — anything else cannot be regenerated deterministically — and
//! (b) fits under the caller's `--max-cells` budget, then compares:
//!
//! * **HPWL** — hard signal. Legalized wire length is bitwise
//!   deterministic for a given circuit/config at any thread count, so any
//!   drift beyond the tolerance is a real quality regression (or a real
//!   improvement worth re-baselining).
//! * **Wall clock** — soft signal. Timing depends on the host, so the
//!   verdict reports it but [`CompareReport::passed`] ignores it; CI
//!   wrappers treat it as warn-only.
//!
//! The verdict serializes through [`CompareReport::to_json`] so scripts
//! (`scripts/bench_gate.sh`) can consume it without scraping the table.

use crate::{run_kraftwerk, run_kraftwerk_multilevel, table1_circuits};
use kraftwerk_core::{FieldSolverKind, KraftwerkConfig, MultilevelConfig};
use kraftwerk_netlist::synth::{generate, mcnc, scale};
use kraftwerk_trace::json::{self, Json, JsonObject};

/// Tolerances and scope for one gate run.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Relative HPWL tolerance (`0.02` = 2%). Exceeding it fails the gate.
    pub hpwl_tolerance: f64,
    /// Relative wall-clock tolerance. Exceeding it is reported as a
    /// warning but never fails the gate.
    pub wall_tolerance: f64,
    /// Only rerun baseline circuits with at most this many cells.
    pub max_cells: usize,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            hpwl_tolerance: 0.02,
            wall_tolerance: 0.25,
            max_cells: 2000,
        }
    }
}

/// One run parsed out of a `BENCH_place.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Circuit name.
    pub netlist: String,
    /// Config label (`"standard"` or `"fast"`).
    pub mode: String,
    /// Movable cell count recorded in the baseline.
    pub cells: usize,
    /// Baseline wall-clock seconds.
    pub wall_s: f64,
    /// Baseline legalized HPWL in meters.
    pub hpwl_m: f64,
}

/// One baseline-vs-current measurement pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Circuit name.
    pub netlist: String,
    /// Config label.
    pub mode: String,
    /// Baseline HPWL (meters).
    pub baseline_hpwl_m: f64,
    /// Fresh HPWL (meters).
    pub current_hpwl_m: f64,
    /// Baseline wall-clock seconds.
    pub baseline_wall_s: f64,
    /// Fresh wall-clock seconds.
    pub current_wall_s: f64,
    /// `true` when the HPWL drift exceeds the hard tolerance.
    pub hpwl_regressed: bool,
    /// `true` when the wall-clock drift exceeds the soft tolerance.
    pub wall_regressed: bool,
}

impl Delta {
    /// Relative HPWL drift (`+0.03` = 3% worse than baseline).
    #[must_use]
    pub fn hpwl_delta(&self) -> f64 {
        relative_delta(self.baseline_hpwl_m, self.current_hpwl_m)
    }

    /// Relative wall-clock drift.
    #[must_use]
    pub fn wall_delta(&self) -> f64 {
        relative_delta(self.baseline_wall_s, self.current_wall_s)
    }
}

/// The gate verdict: every rerun pair plus what was skipped and why.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// One entry per rerun baseline circuit/mode pair.
    pub deltas: Vec<Delta>,
    /// Baseline runs not rerun, as `"<netlist>/<mode>: <reason>"`.
    pub skipped: Vec<String>,
    /// The hard HPWL tolerance the verdict was computed with.
    pub hpwl_tolerance: f64,
    /// The soft wall-clock tolerance the verdict was computed with.
    pub wall_tolerance: f64,
}

/// Relative drift of `current` against `baseline` (`+0.03` = 3% worse).
///
/// A zero or non-finite baseline (or a non-finite measurement) cannot
/// anchor a comparison, so the drift is NaN — and because `NaN > tol` is
/// `false` for every tolerance, callers must fail hard on a non-finite
/// drift instead of comparing it. The old formulation divided through and
/// let a corrupt baseline (NaN fields, zeroed HPWL) sail past the gate as
/// a silent pass.
fn relative_delta(baseline: f64, current: f64) -> f64 {
    if !baseline.is_finite() || baseline.abs() < f64::EPSILON || !current.is_finite() {
        return f64::NAN;
    }
    (current - baseline) / baseline
}

impl CompareReport {
    /// `true` when no HPWL comparison exceeded the hard tolerance.
    /// Wall-clock drift never fails the gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        !self.deltas.iter().any(|d| d.hpwl_regressed)
    }

    /// Number of soft wall-clock warnings.
    #[must_use]
    pub fn wall_warnings(&self) -> usize {
        self.deltas.iter().filter(|d| d.wall_regressed).count()
    }

    /// Human-readable warning strings for every soft (non-fatal)
    /// finding: one per wall-clock drift beyond the soft tolerance, one
    /// per skipped baseline run. Serialized as the verdict's `warnings`
    /// array so CI can surface them without re-deriving the phrasing.
    #[must_use]
    pub fn warnings(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .deltas
            .iter()
            .filter(|d| d.wall_regressed)
            .map(|d| {
                format!(
                    "{}/{}: wall clock {:+.1}% vs baseline (soft tolerance {:.0}%)",
                    d.netlist,
                    d.mode,
                    d.wall_delta() * 100.0,
                    self.wall_tolerance * 100.0
                )
            })
            .collect();
        out.extend(self.skipped.iter().map(|s| format!("skipped {s}")));
        out
    }

    /// Machine-readable verdict consumed by `scripts/bench_gate.sh`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str_field("verdict", if self.passed() { "pass" } else { "fail" });
        o.f64_field("hpwl_tolerance", self.hpwl_tolerance);
        o.f64_field("wall_tolerance", self.wall_tolerance);
        o.u64_field(
            "hpwl_failures",
            self.deltas.iter().filter(|d| d.hpwl_regressed).count() as u64,
        );
        o.u64_field("wall_warnings", self.wall_warnings() as u64);
        let mut warnings = String::from("[");
        for (i, w) in self.warnings().iter().enumerate() {
            if i > 0 {
                warnings.push(',');
            }
            json::write_escaped(&mut warnings, w);
        }
        warnings.push(']');
        o.raw_field("warnings", &warnings);
        let mut items = String::from("[");
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                items.push(',');
            }
            let mut e = JsonObject::new();
            e.str_field("netlist", &d.netlist);
            e.str_field("mode", &d.mode);
            e.f64_field("baseline_hpwl_m", d.baseline_hpwl_m);
            e.f64_field("current_hpwl_m", d.current_hpwl_m);
            e.f64_field("hpwl_delta", d.hpwl_delta());
            e.f64_field("baseline_wall_s", d.baseline_wall_s);
            e.f64_field("current_wall_s", d.current_wall_s);
            e.f64_field("wall_delta", d.wall_delta());
            e.bool_field("hpwl_regressed", d.hpwl_regressed);
            e.bool_field("wall_regressed", d.wall_regressed);
            items.push_str(&e.finish());
        }
        items.push(']');
        o.raw_field("deltas", &items);
        let mut skipped = String::from("[");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                skipped.push(',');
            }
            // `write_escaped` emits the quotes itself; wrapping it in
            // another pair used to make any non-empty skip list invalid
            // JSON.
            json::write_escaped(&mut skipped, s);
        }
        skipped.push(']');
        o.raw_field("skipped", &skipped);
        o.finish()
    }

    /// Human-readable table, one line per delta plus the skip list.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut out = String::from(
            "circuit      mode      hpwl Δ      wall Δ      status\n",
        );
        for d in &self.deltas {
            let status = if !d.hpwl_delta().is_finite() {
                "FAIL (corrupt baseline)"
            } else if d.hpwl_regressed {
                "FAIL (hpwl)"
            } else if d.wall_regressed {
                "warn (wall)"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<12} {:<9} {:>+9.4}% {:>+10.1}% {:>11}\n",
                d.netlist,
                d.mode,
                d.hpwl_delta() * 100.0,
                d.wall_delta() * 100.0,
                status
            ));
        }
        for s in &self.skipped {
            out.push_str(&format!("skipped: {s}\n"));
        }
        out
    }
}

fn field_f64(run: &Json, key: &str) -> Result<f64, String> {
    run.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("baseline run missing numeric `{key}`"))
}

fn field_str(run: &Json, key: &str) -> Result<String, String> {
    run.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("baseline run missing string `{key}`"))
}

/// Parses a `BENCH_place.json` document into its runs.
///
/// # Errors
///
/// Returns a description of the first structural problem: not JSON, no
/// `runs` array, or a run missing one of the compared fields.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineRun>, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or_else(|| "baseline has no `runs` array".to_string())?;
    let mut out = Vec::with_capacity(runs.len());
    for run in runs {
        out.push(BaselineRun {
            netlist: field_str(run, "netlist")?,
            mode: field_str(run, "mode")?,
            cells: field_f64(run, "cells")? as usize,
            wall_s: field_f64(run, "wall_s")?,
            hpwl_m: field_f64(run, "hpwl_m")?,
        });
    }
    Ok(out)
}

/// The config a baseline `mode` label maps to; `None` for labels this
/// gate cannot reproduce.
fn config_for_mode(mode: &str) -> Option<KraftwerkConfig> {
    match mode {
        "standard" => Some(KraftwerkConfig::standard()),
        "fast" => Some(KraftwerkConfig::fast()),
        "spectral" => {
            Some(KraftwerkConfig::standard().with_field_solver(FieldSolverKind::Spectral))
        }
        _ => None,
    }
}

/// The config a `multilevel-*` scale-tier mode label maps to; `None`
/// for multilevel labels this gate cannot reproduce. All tiers run the
/// fast preset — the modes differ only in the Poisson backend, so their
/// baseline rows gate the backend inside the multilevel flow.
fn multilevel_config_for_mode(mode: &str) -> Option<KraftwerkConfig> {
    match mode {
        "multilevel-b2b" => Some(KraftwerkConfig::fast()),
        "multilevel-spectral" => {
            Some(KraftwerkConfig::fast().with_field_solver(FieldSolverKind::Spectral))
        }
        "multilevel-hybrid" => {
            Some(KraftwerkConfig::fast().with_field_solver(FieldSolverKind::Hybrid))
        }
        _ => None,
    }
}

/// Reruns the comparable subset of `baseline` and diffs it.
///
/// Circuits outside the Table 1 preset list are skipped (never panics on
/// an unknown name), as are circuits above `config.max_cells` and modes
/// without a reproducible config.
#[must_use]
pub fn run_compare(baseline: &[BaselineRun], config: &CompareConfig) -> CompareReport {
    let eligible = table1_circuits(config.max_cells);
    let mut report = CompareReport {
        hpwl_tolerance: config.hpwl_tolerance,
        wall_tolerance: config.wall_tolerance,
        ..CompareReport::default()
    };
    // Regenerate each circuit once even when both modes reference it.
    let mut cache: Vec<(String, kraftwerk_netlist::Netlist)> = Vec::new();
    for run in baseline {
        let tag = format!("{}/{}", run.netlist, run.mode);
        // Scale-tier rows run the multilevel + bound-to-bound flow with
        // the same config `kraftwerk bench --json` measures them with
        // (fast preset, Poisson backend per mode label), so their HPWL
        // is reproducible and the gate enforces it like any Table 1 row.
        if run.mode.starts_with("multilevel-") {
            let Some(ml_config) = multilevel_config_for_mode(&run.mode) else {
                report
                    .skipped
                    .push(format!("{tag}: mode `{}` is not reproducible", run.mode));
                continue;
            };
            let Some(tier) = scale::TIERS.iter().find(|t| t.name == run.netlist) else {
                report.skipped.push(format!("{tag}: not a scale tier"));
                continue;
            };
            if tier.cells > config.max_cells {
                report
                    .skipped
                    .push(format!("{tag}: above --max-cells {}", config.max_cells));
                continue;
            }
            if !cache.iter().any(|(name, _)| name == run.netlist.as_str()) {
                cache.push((run.netlist.clone(), generate(&scale::config_for(*tier))));
            }
            let Some((_, netlist)) = cache.iter().find(|(name, _)| name == run.netlist.as_str())
            else {
                continue;
            };
            let fresh = run_kraftwerk_multilevel(netlist, ml_config, &MultilevelConfig::default());
            push_delta(&mut report, run, &fresh, config);
            continue;
        }
        if !mcnc::TABLE1.iter().any(|p| p.name == run.netlist) {
            report.skipped.push(format!("{tag}: not a Table 1 circuit"));
            continue;
        }
        let Some(preset) = eligible.iter().find(|p| p.name == run.netlist) else {
            report
                .skipped
                .push(format!("{tag}: above --max-cells {}", config.max_cells));
            continue;
        };
        let Some(kw_config) = config_for_mode(&run.mode) else {
            report
                .skipped
                .push(format!("{tag}: mode `{}` is not reproducible", run.mode));
            continue;
        };
        if !cache.iter().any(|(name, _)| name == run.netlist.as_str()) {
            cache.push((run.netlist.clone(), generate(&mcnc::config_for(*preset))));
        }
        let Some((_, netlist)) = cache.iter().find(|(name, _)| name == run.netlist.as_str())
        else {
            continue;
        };
        let fresh = run_kraftwerk(netlist, kw_config);
        push_delta(&mut report, run, &fresh, config);
    }
    report
}

/// Diffs one fresh measurement against its baseline row.
fn push_delta(
    report: &mut CompareReport,
    run: &BaselineRun,
    fresh: &crate::FlowResult,
    config: &CompareConfig,
) {
    let hpwl_delta = relative_delta(run.hpwl_m, fresh.wirelength_m);
    let wall_delta = relative_delta(run.wall_s, fresh.seconds);
    report.deltas.push(Delta {
        netlist: run.netlist.clone(),
        mode: run.mode.clone(),
        baseline_hpwl_m: run.hpwl_m,
        current_hpwl_m: fresh.wirelength_m,
        baseline_wall_s: run.wall_s,
        current_wall_s: fresh.seconds,
        // Only *worse* wire length fails: improvements are flagged in
        // the table (large negative delta) but should prompt a
        // re-baseline, not a red build. A non-finite drift means the
        // baseline itself is corrupt — that is a hard failure, never
        // a silent pass.
        hpwl_regressed: !hpwl_delta.is_finite() || hpwl_delta > config.hpwl_tolerance,
        wall_regressed: !wall_delta.is_finite() || wall_delta > config.wall_tolerance,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_json, run_kraftwerk_recorded};

    #[test]
    fn baseline_round_trips_through_bench_json() {
        let netlist = mcnc::by_name("fract");
        let (_, run) = run_kraftwerk_recorded(&netlist, KraftwerkConfig::fast(), "fast");
        let parsed = parse_baseline(&bench_json(std::slice::from_ref(&run)))
            .expect("bench_json parses as a baseline");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].netlist, "fract");
        assert_eq!(parsed[0].mode, "fast");
        assert!(parsed[0].hpwl_m > 0.0);
    }

    #[test]
    fn identical_baseline_passes_and_injected_regression_fails() {
        let netlist = mcnc::by_name("fract");
        let fresh = run_kraftwerk(&netlist, KraftwerkConfig::fast());
        let mut baseline = vec![BaselineRun {
            netlist: "fract".to_string(),
            mode: "fast".to_string(),
            cells: 125,
            wall_s: fresh.seconds,
            hpwl_m: fresh.wirelength_m,
        }];
        let config = CompareConfig::default();
        let report = run_compare(&baseline, &config);
        assert_eq!(report.deltas.len(), 1);
        assert!(
            report.passed(),
            "identical baseline must pass: {}",
            report.summary_table()
        );
        // HPWL is deterministic, so the delta is exactly zero.
        assert_eq!(report.deltas[0].hpwl_delta(), 0.0);

        // Injected regression: pretend the baseline was 3% better than
        // what the placer produces today.
        baseline[0].hpwl_m = fresh.wirelength_m / 1.03;
        let report = run_compare(&baseline, &config);
        assert!(!report.passed(), "3% drift must trip the 2% gate");
        let verdict = kraftwerk_trace::json::parse(&report.to_json()).expect("verdict JSON");
        assert_eq!(
            verdict
                .get("verdict")
                .and_then(kraftwerk_trace::json::Json::as_str),
            Some("fail")
        );
        assert_eq!(
            verdict
                .get("hpwl_failures")
                .and_then(kraftwerk_trace::json::Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn corrupt_baselines_fail_hard_instead_of_sliding_past_the_gate() {
        // Before the fix, a NaN baseline made the drift NaN and
        // `NaN > tolerance` is false, so the run counted as a pass; a
        // zeroed baseline behaved the same through the zero-guard. Both
        // must now be hard failures with an explicit verdict.
        let config = CompareConfig::default();
        for corrupt_hpwl in [f64::NAN, 0.0, f64::INFINITY] {
            let baseline = vec![BaselineRun {
                netlist: "fract".to_string(),
                mode: "fast".to_string(),
                cells: 125,
                wall_s: 0.1,
                hpwl_m: corrupt_hpwl,
            }];
            let report = run_compare(&baseline, &config);
            assert_eq!(report.deltas.len(), 1);
            assert!(
                !report.passed(),
                "corrupt baseline hpwl={corrupt_hpwl} must fail the gate:\n{}",
                report.summary_table()
            );
            assert!(
                report.summary_table().contains("FAIL (corrupt baseline)"),
                "verdict must name the corrupt baseline:\n{}",
                report.summary_table()
            );
            // The verdict JSON stays machine-parseable (NaN → null).
            let verdict =
                kraftwerk_trace::json::parse(&report.to_json()).expect("verdict JSON parses");
            assert_eq!(
                verdict
                    .get("verdict")
                    .and_then(kraftwerk_trace::json::Json::as_str),
                Some("fail")
            );
        }
    }

    #[test]
    fn verdict_warnings_array_names_wall_drift_and_skips() {
        let report = CompareReport {
            deltas: vec![Delta {
                netlist: "fract".to_string(),
                mode: "fast".to_string(),
                baseline_hpwl_m: 1.0,
                current_hpwl_m: 1.0,
                baseline_wall_s: 1.0,
                current_wall_s: 1.5,
                hpwl_regressed: false,
                wall_regressed: true,
            }],
            skipped: vec!["weird/\"mode\": not a Table 1 circuit".to_string()],
            hpwl_tolerance: 0.02,
            wall_tolerance: 0.25,
        };
        let warnings = report.warnings();
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].contains("fract/fast"));
        assert!(warnings[0].contains("+50.0%"));
        assert!(warnings[1].starts_with("skipped "));
        // The verdict JSON stays parseable with a non-empty skip list
        // (double-quoted skip entries used to corrupt the document) and
        // round-trips the warnings array for CI.
        let verdict =
            kraftwerk_trace::json::parse(&report.to_json()).expect("verdict JSON parses");
        let parsed = verdict
            .get("warnings")
            .and_then(kraftwerk_trace::json::Json::as_array)
            .expect("warnings array");
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0].as_str().map(|w| w.contains("wall clock")),
            Some(true)
        );
        assert_eq!(
            verdict
                .get("wall_warnings")
                .and_then(kraftwerk_trace::json::Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn relative_delta_flags_unusable_baselines_as_nan() {
        assert!((relative_delta(2.0, 2.1) - 0.05).abs() < 1e-12);
        assert!(relative_delta(0.0, 1.0).is_nan());
        assert!(relative_delta(0.0, 0.0).is_nan());
        assert!(relative_delta(f64::NAN, 1.0).is_nan());
        assert!(relative_delta(f64::INFINITY, 1.0).is_nan());
        assert!(relative_delta(1.0, f64::NAN).is_nan());
    }

    #[test]
    fn spectral_mode_is_reproducible_by_the_gate() {
        let cfg = config_for_mode("spectral").expect("spectral maps to a config");
        assert_eq!(cfg.field_solver, FieldSolverKind::Spectral);
        // Everything else matches standard mode: only the Poisson
        // backend differs, so spectral baseline rows gate the backend.
        let standard = KraftwerkConfig::standard();
        assert_eq!(cfg.k, standard.k);
        assert_eq!(cfg.max_transformations, standard.max_transformations);
    }

    #[test]
    fn unknown_circuits_and_oversized_circuits_are_skipped_not_fatal() {
        let baseline = vec![
            BaselineRun {
                netlist: "not_a_circuit".to_string(),
                mode: "standard".to_string(),
                cells: 10,
                wall_s: 1.0,
                hpwl_m: 1.0,
            },
            BaselineRun {
                netlist: "avq.large".to_string(),
                mode: "standard".to_string(),
                cells: 25_114,
                wall_s: 100.0,
                hpwl_m: 2.7,
            },
            BaselineRun {
                netlist: "fract".to_string(),
                mode: "mystery".to_string(),
                cells: 125,
                wall_s: 1.0,
                hpwl_m: 1.0,
            },
        ];
        let report = run_compare(&baseline, &CompareConfig::default());
        assert!(report.deltas.is_empty());
        assert_eq!(report.skipped.len(), 3);
        assert!(report.passed(), "skips alone never fail the gate");
    }

    #[test]
    fn multilevel_b2b_rows_gate_on_scale_tiers_only() {
        // A multilevel-b2b row must name a scale tier, and tiers above
        // --max-cells are skipped, not rerun (the big tiers would take
        // minutes in a unit test).
        let baseline = vec![
            BaselineRun {
                netlist: "fract".to_string(),
                mode: "multilevel-b2b".to_string(),
                cells: 125,
                wall_s: 1.0,
                hpwl_m: 1.0,
            },
            BaselineRun {
                netlist: "scale10k".to_string(),
                mode: "multilevel-b2b".to_string(),
                cells: 10_000,
                wall_s: 10.0,
                hpwl_m: 5.0,
            },
        ];
        let report = run_compare(&baseline, &CompareConfig::default());
        assert!(report.deltas.is_empty());
        assert_eq!(report.skipped.len(), 2);
        assert!(report.skipped[0].contains("not a scale tier"));
        assert!(report.skipped[1].contains("above --max-cells"));
        assert!(report.passed());
    }

    #[test]
    fn spectral_and_hybrid_scale_modes_are_reproducible_by_the_gate() {
        let spectral =
            multilevel_config_for_mode("multilevel-spectral").expect("spectral tier mode maps");
        assert_eq!(spectral.field_solver, FieldSolverKind::Spectral);
        let hybrid =
            multilevel_config_for_mode("multilevel-hybrid").expect("hybrid tier mode maps");
        assert_eq!(hybrid.field_solver, FieldSolverKind::Hybrid);
        // Everything else matches the plain tier flow: only the Poisson
        // backend differs, so these rows gate the backend at scale.
        let b2b = multilevel_config_for_mode("multilevel-b2b").expect("b2b maps");
        assert_eq!(spectral.k, b2b.k);
        assert_eq!(hybrid.max_transformations, b2b.max_transformations);
        // An unknown multilevel label is skipped, not fatal, and never
        // falls through to the Table 1 branch.
        let baseline = vec![BaselineRun {
            netlist: "scale10k".to_string(),
            mode: "multilevel-annealed".to_string(),
            cells: 10_000,
            wall_s: 1.0,
            hpwl_m: 1.0,
        }];
        let report = run_compare(&baseline, &CompareConfig::default());
        assert!(report.deltas.is_empty());
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].contains("not reproducible"));
        assert!(report.passed());
    }

    #[test]
    fn malformed_baselines_are_reported_not_panicked() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"bench\":\"place\"}").is_err());
        assert!(parse_baseline("{\"runs\":[{\"netlist\":\"fract\"}]}").is_err());
    }
}
