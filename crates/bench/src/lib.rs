//! Shared harness for the paper's experiments.
//!
//! Every table binary (`table1` … `table4`, `fastmode`, `ablation`) builds
//! on the flows defined here, so "wire length" and "CPU time" always mean
//! the same thing: **legalized** half-perimeter wire length (converted to
//! meters, 1 layout unit = 1 µm) and wall-clock seconds for the complete
//! global placement + legalization + refinement flow.
//!
//! Results are cached as small CSV files under `bench_results/` so the
//! derived tables (2 and 4) can be regenerated without re-running the
//! placers.
//!
//! All harness binaries print through [`kraftwerk_trace::Console`] (get
//! one with [`console`]) so `--quiet`/`-v` mean the same thing
//! everywhere, and every completed flow reports its measurement as a
//! `bench.flow` trace event when a sink is installed.

use kraftwerk_baselines::{AnnealingConfig, AnnealingPlacer, GordianConfig, GordianPlacer};
use kraftwerk_core::{try_place_multilevel, GlobalPlacer, KraftwerkConfig, MultilevelConfig};
use kraftwerk_legalize::{check_legality, legalize, refine};
use kraftwerk_netlist::{metrics, Netlist, Placement};
use kraftwerk_timing::{optimize_timing_legalized, CriticalityTracker, DelayModel, Sta};
use kraftwerk_trace::json::JsonObject;
use kraftwerk_trace::{Console, RunRecorder, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

pub mod compare;

/// The shared reporter for harness binaries: built from the conventional
/// CLI flags (`--quiet`/`-q`, `--verbose`/`-v`) of the current process.
#[must_use]
pub fn console() -> Console {
    let args: Vec<String> = std::env::args().collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    Console::from_flags(has("--quiet") || has("-q"), has("--verbose") || has("-v"))
}

/// Layout units (µm) to meters.
pub const UNITS_TO_METERS: f64 = 1e-6;

/// One completed placement flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The legalized placement.
    pub placement: Placement,
    /// Legalized half-perimeter wire length in meters.
    pub wirelength_m: f64,
    /// Wall-clock seconds for the complete flow.
    pub seconds: f64,
    /// Whether the final placement passed the legality check.
    pub legal: bool,
}

fn finish(flow: &'static str, netlist: &Netlist, global: Placement, started: Instant) -> FlowResult {
    let mut legal = legalize(netlist, &global).expect("row capacity");
    refine(netlist, &mut legal, 2);
    let seconds = started.elapsed().as_secs_f64();
    let result = FlowResult {
        wirelength_m: metrics::hpwl(netlist, &legal) * UNITS_TO_METERS,
        legal: check_legality(netlist, &legal, 1e-6).is_legal(),
        placement: legal,
        seconds,
    };
    if kraftwerk_trace::enabled() {
        kraftwerk_trace::event(
            "bench.flow",
            vec![
                ("flow", Value::from(flow)),
                ("circuit", Value::from(netlist.name())),
                ("wirelength_m", Value::from(result.wirelength_m)),
                ("seconds", Value::from(result.seconds)),
                ("legal", Value::from(result.legal)),
            ],
        );
    }
    result
}

/// The Kraftwerk flow (standard or any other config).
///
/// # Panics
///
/// Panics when the benchmark netlist fails validation or the watchdog
/// cannot recover the run — generated benchmarks always place, so either
/// indicates harness misuse, not a measurement.
#[must_use]
pub fn run_kraftwerk(netlist: &Netlist, config: KraftwerkConfig) -> FlowResult {
    let started = Instant::now();
    let result = GlobalPlacer::new(config)
        .try_place(netlist)
        .unwrap_or_else(|e| panic!("benchmark placement failed: {e}"));
    assert!(
        result.health.is_clean(),
        "benchmark run needed watchdog recovery: {:?}",
        result.health
    );
    finish("kraftwerk", netlist, result.placement, started)
}

/// The multilevel Kraftwerk flow: V-cycle clustering hierarchy with the
/// bound-to-bound net model — the documented path for netlists beyond
/// ~25k cells (the `scale*` tiers).
///
/// # Panics
///
/// Panics when the netlist fails to place or the watchdog had to degrade
/// the run. Recovered watchdog trips are tolerated: across a deep
/// hierarchy an occasional trip on a coarse level is expected and the
/// refinement levels absorb it.
#[must_use]
pub fn run_kraftwerk_multilevel(
    netlist: &Netlist,
    config: KraftwerkConfig,
    ml: &MultilevelConfig,
) -> FlowResult {
    let started = Instant::now();
    let result = try_place_multilevel(netlist, config, ml)
        .unwrap_or_else(|e| panic!("benchmark placement failed: {e}"));
    assert!(
        !result.health.degraded && !result.health.budget_exhausted,
        "benchmark run degraded: {:?}",
        result.health
    );
    finish("kraftwerk-multilevel", netlist, result.placement, started)
}

/// The TimberWolf-class simulated annealing flow.
#[must_use]
pub fn run_annealing(netlist: &Netlist, config: AnnealingConfig) -> FlowResult {
    let started = Instant::now();
    let (global, _) = AnnealingPlacer::new(config).place(netlist);
    finish("annealing", netlist, global, started)
}

/// The GORDIAN-class quadratic/partitioning flow.
#[must_use]
pub fn run_gordian(netlist: &Netlist, config: GordianConfig) -> FlowResult {
    let started = Instant::now();
    let global = GordianPlacer::new(config).place(netlist);
    finish("gordian", netlist, global, started)
}

/// One `--json` measurement: a Kraftwerk flow executed under a
/// [`RunRecorder`] so the per-phase wall times of the PR 1 trace spans
/// ride along with the headline numbers.
#[derive(Debug, Clone)]
pub struct JsonRun {
    /// Circuit name.
    pub netlist: String,
    /// Movable cell count.
    pub cells: usize,
    /// Net count.
    pub nets: usize,
    /// Config label (`"standard"`, `"fast"`, …).
    pub mode: String,
    /// Worker threads the data-parallel runtime used for this run.
    pub threads: usize,
    /// Wall-clock seconds for the complete flow.
    pub wall_s: f64,
    /// Legalized half-perimeter wire length in meters.
    pub hpwl_m: f64,
    /// Placement transformations performed.
    pub iterations: usize,
    /// Whether the final placement passed the legality check.
    pub legal: bool,
    /// Cumulative per-phase wall time, most expensive first.
    pub phases: Vec<kraftwerk_trace::PhaseStat>,
}

/// Runs a flow under a private [`RunRecorder`] and builds its [`JsonRun`]
/// record. Any previously installed trace sink is replaced for the
/// duration of the run.
fn record_flow(
    netlist: &Netlist,
    mode: &str,
    flow: impl FnOnce() -> FlowResult,
) -> (FlowResult, JsonRun) {
    let recorder = Arc::new(RunRecorder::new());
    kraftwerk_trace::install(recorder.clone());
    let result = flow();
    kraftwerk_trace::uninstall();
    let report = recorder.report();
    let run = JsonRun {
        netlist: netlist.name().to_owned(),
        cells: netlist.num_movable(),
        nets: netlist.num_nets(),
        mode: mode.to_owned(),
        threads: kraftwerk_par::current_threads(),
        wall_s: result.seconds,
        hpwl_m: result.wirelength_m,
        iterations: report.iterations.len(),
        legal: result.legal,
        phases: report.profile,
    };
    (result, run)
}

/// Runs the Kraftwerk flow under a private [`RunRecorder`] and returns
/// the result together with its [`JsonRun`] record.
#[must_use]
pub fn run_kraftwerk_recorded(netlist: &Netlist, config: KraftwerkConfig, mode: &str) -> (FlowResult, JsonRun) {
    record_flow(netlist, mode, || run_kraftwerk(netlist, config))
}

/// Runs the multilevel Kraftwerk flow under a private [`RunRecorder`] and
/// returns the result together with its [`JsonRun`] record.
#[must_use]
pub fn run_kraftwerk_multilevel_recorded(
    netlist: &Netlist,
    config: KraftwerkConfig,
    ml: &MultilevelConfig,
    mode: &str,
) -> (FlowResult, JsonRun) {
    record_flow(netlist, mode, || run_kraftwerk_multilevel(netlist, config, ml))
}

/// Rounds wall-clock seconds to microsecond precision for the JSON
/// schema: timer noise below a microsecond is meaningless, and a fixed
/// precision keeps committed baselines diffable.
#[must_use]
pub fn round_seconds(seconds: f64) -> f64 {
    (seconds * 1e6).round() / 1e6
}

/// Serializes `--json` runs into the `BENCH_place.json` schema. The
/// `phases` keys are sorted by name and every wall-clock figure is
/// rounded with [`round_seconds`], so the output is deterministic up to
/// actual timing differences.
#[must_use]
pub fn bench_json(runs: &[JsonRun]) -> String {
    let mut out = String::from("{\"bench\":\"place\",\"host_cpus\":");
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    out.push_str(&cpus.to_string());
    out.push_str(",\"runs\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut o = JsonObject::new();
        o.str_field("netlist", &run.netlist);
        o.u64_field("cells", run.cells as u64);
        o.u64_field("nets", run.nets as u64);
        o.str_field("mode", &run.mode);
        o.u64_field("threads", run.threads as u64);
        o.f64_field("wall_s", round_seconds(run.wall_s));
        o.f64_field("hpwl_m", run.hpwl_m);
        o.u64_field("iterations", run.iterations as u64);
        o.bool_field("legal", run.legal);
        let mut stats: Vec<&kraftwerk_trace::PhaseStat> = run.phases.iter().collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        let mut phases = JsonObject::new();
        for stat in stats {
            let mut p = JsonObject::new();
            p.u64_field("calls", stat.calls);
            p.f64_field("wall_s", round_seconds(stat.seconds));
            phases.raw_field(&stat.name, &p.finish());
        }
        o.raw_field("phases", &phases.finish());
        out.push_str(&o.finish());
    }
    out.push_str("]}");
    out
}

/// Writes `BENCH_place.json` into the current directory (the repo root
/// when run via `cargo run`) and reports the path on the console.
///
/// # Panics
///
/// Panics on I/O errors (harness tooling).
pub fn write_bench_json(console: &Console, runs: &[JsonRun]) {
    std::fs::write("BENCH_place.json", bench_json(runs)).expect("write BENCH_place.json");
    console.info(format!("wrote BENCH_place.json ({} runs)", runs.len()));
}

/// Timing measurement of a finished flow: longest path in ns.
#[must_use]
pub fn longest_path(netlist: &Netlist, placement: &Placement, model: DelayModel) -> f64 {
    Sta::new(netlist, model)
        .expect("synthetic circuits are acyclic")
        .analyze(placement)
        .max_delay
}

/// One timing experiment outcome (a Table 3 cell pair plus CPU).
#[derive(Debug, Clone, Copy)]
pub struct TimingOutcome {
    /// Longest path without timing optimization (ns).
    pub without_ns: f64,
    /// Longest path with timing optimization (ns).
    pub with_ns: f64,
    /// Wall-clock seconds for the timing-driven flow.
    pub seconds: f64,
}

fn emit_timing(flow: &'static str, netlist: &Netlist, outcome: &TimingOutcome) {
    if kraftwerk_trace::enabled() {
        kraftwerk_trace::event(
            "bench.timing",
            vec![
                ("flow", Value::from(flow)),
                ("circuit", Value::from(netlist.name())),
                ("without_ns", Value::from(outcome.without_ns)),
                ("with_ns", Value::from(outcome.with_ns)),
                ("seconds", Value::from(outcome.seconds)),
            ],
        );
    }
}

/// Kraftwerk timing-driven flow (the paper's iterative net weighting,
/// measured on legal placements).
#[must_use]
pub fn run_kraftwerk_timing(netlist: &Netlist, model: DelayModel) -> TimingOutcome {
    let cfg = KraftwerkConfig::standard();
    let plain = run_kraftwerk(netlist, cfg.clone());
    let started = Instant::now();
    let optimized = optimize_timing_legalized(netlist, model, cfg, 3)
        .expect("synthetic circuits are acyclic")
        .placement;
    let outcome = TimingOutcome {
        without_ns: longest_path(netlist, &plain.placement, model),
        with_ns: longest_path(netlist, &optimized, model),
        seconds: started.elapsed().as_secs_f64(),
    };
    emit_timing("kraftwerk", netlist, &outcome);
    outcome
}

/// Timing-driven baseline: iterate (place → STA → net weights) a few
/// times with a baseline placer — the net-weighting scheme TimberWolf-TD
/// \[20\] and SPEED \[21\] style flows use.
#[must_use]
pub fn run_baseline_timing(
    netlist: &Netlist,
    model: DelayModel,
    iterations: usize,
    mut place: impl FnMut(Option<Vec<f64>>) -> FlowResult,
) -> TimingOutcome {
    let sta = Sta::new(netlist, model).expect("synthetic circuits are acyclic");
    let plain = place(None);
    let without_ns = sta.analyze(&plain.placement).max_delay;
    let started = Instant::now();
    let mut tracker = CriticalityTracker::new(netlist.num_nets());
    let mut weights = {
        let report = sta.analyze(&plain.placement);
        tracker.update(&report)
    };
    let mut best = without_ns;
    for _ in 0..iterations {
        let result = place(Some(weights.clone()));
        let report = sta.analyze(&result.placement);
        best = best.min(report.max_delay);
        weights = tracker.update(&report);
    }
    let outcome = TimingOutcome {
        without_ns,
        with_ns: best,
        seconds: started.elapsed().as_secs_f64(),
    };
    emit_timing("baseline", netlist, &outcome);
    outcome
}

/// Zero-wire lower bound of a circuit (Table 4).
#[must_use]
pub fn lower_bound(netlist: &Netlist, model: DelayModel) -> f64 {
    Sta::new(netlist, model)
        .expect("synthetic circuits are acyclic")
        .lower_bound()
}

/// Exploitation of the optimization potential (Table 4):
/// `(without − with) / (without − bound)`.
#[must_use]
pub fn exploitation(outcome: TimingOutcome, bound: f64) -> f64 {
    let potential = outcome.without_ns - bound;
    if potential <= 0.0 {
        0.0
    } else {
        (outcome.without_ns - outcome.with_ns) / potential
    }
}

/// Directory for cached experiment results (created on demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = Path::new("bench_results");
    std::fs::create_dir_all(dir).expect("create bench_results/");
    dir.to_path_buf()
}

/// Writes rows of `;`-separated values with a header line.
///
/// # Panics
///
/// Panics on I/O errors (harness tooling).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<String>]) {
    let mut out = String::from(header);
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(";"));
        out.push('\n');
    }
    std::fs::write(results_dir().join(name), out).expect("write results csv");
}

/// Reads a CSV written by [`write_csv`]; `None` when absent.
#[must_use]
pub fn read_csv(name: &str) -> Option<Vec<Vec<String>>> {
    let text = std::fs::read_to_string(results_dir().join(name)).ok()?;
    Some(
        text.lines()
            .skip(1)
            .map(|l| l.split(';').map(str::to_owned).collect())
            .collect(),
    )
}

/// The circuits used for a run: all of Table 1, or the subset below
/// `max_cells` when quick mode is requested.
#[must_use]
pub fn table1_circuits(max_cells: usize) -> Vec<kraftwerk_netlist::synth::mcnc::Preset> {
    kraftwerk_netlist::synth::mcnc::TABLE1
        .iter()
        .copied()
        .filter(|p| p.cells <= max_cells)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kraftwerk_netlist::synth::{generate, SynthConfig};

    #[test]
    fn flows_produce_legal_placements() {
        let nl = generate(&SynthConfig::with_size("harness", 150, 190, 6));
        let kw = run_kraftwerk(&nl, KraftwerkConfig::standard());
        assert!(kw.legal);
        assert!(kw.wirelength_m > 0.0);
        let sa = run_annealing(&nl, AnnealingConfig::default());
        assert!(sa.legal);
        let gq = run_gordian(&nl, GordianConfig::default());
        assert!(gq.legal);
    }

    #[test]
    fn recorded_run_captures_phases_and_serializes() {
        let nl = generate(&SynthConfig::with_size("jsonrun", 120, 150, 6));
        let (result, run) = run_kraftwerk_recorded(&nl, KraftwerkConfig::fast(), "fast");
        assert!(result.legal);
        assert_eq!(run.netlist, "jsonrun");
        assert_eq!(run.mode, "fast");
        assert!(run.iterations > 0, "no iteration records captured");
        assert!(run.threads >= 1);
        assert!(run.phases.iter().any(|p| p.name == "place.density_map"));
        let json = bench_json(std::slice::from_ref(&run));
        let parsed = kraftwerk_trace::json::parse(&json).expect("valid JSON");
        let runs = parsed.get("runs").and_then(|r| r.as_array()).expect("runs array");
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0].get("netlist").and_then(kraftwerk_trace::json::Json::as_str),
            Some("jsonrun")
        );
        assert!(
            runs[0]
                .get("phases")
                .and_then(|p| p.get("place.solve_x"))
                .and_then(|p| p.get("wall_s"))
                .and_then(kraftwerk_trace::json::Json::as_f64)
                .is_some(),
            "per-phase wall time missing: {json}"
        );
    }

    #[test]
    fn multilevel_flow_produces_legal_placements() {
        let nl = generate(&SynthConfig::with_size("mlharness", 400, 480, 10));
        let ml = MultilevelConfig {
            coarsest_movable: 100,
            ..MultilevelConfig::default()
        };
        let (result, run) =
            run_kraftwerk_multilevel_recorded(&nl, KraftwerkConfig::fast(), &ml, "multilevel-b2b");
        assert!(result.legal);
        assert_eq!(run.mode, "multilevel-b2b");
        assert!(run.iterations > 0, "no iteration records captured");
    }

    #[test]
    fn exploitation_math() {
        let outcome = TimingOutcome {
            without_ns: 10.0,
            with_ns: 7.0,
            seconds: 1.0,
        };
        assert!((exploitation(outcome, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(exploitation(outcome, 10.0), 0.0);
    }

    #[test]
    fn csv_roundtrip() {
        write_csv(
            "test_roundtrip.csv",
            "a;b",
            &[vec!["1".into(), "x".into()], vec!["2".into(), "y".into()]],
        );
        let rows = read_csv("test_roundtrip.csv").expect("written");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], "y");
        let _ = std::fs::remove_file(results_dir().join("test_roundtrip.csv"));
    }

    #[test]
    fn quick_circuit_filter() {
        assert_eq!(table1_circuits(usize::MAX).len(), 9);
        assert_eq!(table1_circuits(2000).len(), 3);
    }
}
