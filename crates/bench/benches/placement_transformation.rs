//! Criterion bench: one placement transformation (section 4.1) end to
//! end — density, Poisson solve, assembly, CG — per design size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kraftwerk_core::{KraftwerkConfig, PlacementSession};
use kraftwerk_netlist::synth::{generate, SynthConfig};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_transformation");
    group.sample_size(10);
    for cells in [1000usize, 4000, 12000] {
        let nl = generate(&SynthConfig::with_size("bench_tx", cells, cells * 12 / 10, 24));
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter_batched(
                || {
                    let mut s = PlacementSession::new(&nl, KraftwerkConfig::standard());
                    s.transform(); // past the unconstrained first solve
                    s
                },
                |mut s| s.transform(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
