//! Criterion bench: the three complete flows on one mid-size circuit —
//! the CPU-time shape behind Tables 1 and 2.

use criterion::{criterion_group, criterion_main, Criterion};
use kraftwerk_baselines::{AnnealingConfig, GordianConfig};
use kraftwerk_bench::{run_annealing, run_gordian, run_kraftwerk};
use kraftwerk_core::KraftwerkConfig;
use kraftwerk_netlist::synth::mcnc;

fn bench_placers(c: &mut Criterion) {
    let nl = mcnc::by_name("primary1");
    let mut group = c.benchmark_group("placer_comparison_primary1");
    group.sample_size(10);
    group.bench_function("kraftwerk_standard", |b| {
        b.iter(|| run_kraftwerk(&nl, KraftwerkConfig::standard()))
    });
    group.bench_function("kraftwerk_fast", |b| {
        b.iter(|| run_kraftwerk(&nl, KraftwerkConfig::fast()))
    });
    group.bench_function("annealing", |b| {
        b.iter(|| run_annealing(&nl, AnnealingConfig::default()))
    });
    group.bench_function("gordian", |b| {
        b.iter(|| run_gordian(&nl, GordianConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_placers);
criterion_main!(benches);
