//! Criterion bench: preconditioned CG on real placement matrices
//! (the inner loop of every placement transformation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kraftwerk_core::{NetModel, QuadraticSystem};
use kraftwerk_netlist::synth::{generate, SynthConfig};
use kraftwerk_sparse::{solve, CgOptions, IdentityPreconditioner, JacobiPreconditioner};

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_solver");
    group.sample_size(10);
    for cells in [1000usize, 4000] {
        let nl = generate(&SynthConfig::with_size("bench_cg", cells, cells * 12 / 10, 16));
        let sys = QuadraticSystem::new(&nl);
        let asm = sys.assemble(&nl, &nl.initial_placement(), None, NetModel::default(), None);
        let b: Vec<f64> = asm.dx.iter().map(|v| -v).collect();
        let opts = CgOptions {
            max_iterations: 500,
            rel_tolerance: 1e-6,
            abs_tolerance: 1e-12,
        };
        group.bench_with_input(BenchmarkId::new("jacobi", cells), &cells, |bch, _| {
            bch.iter(|| {
                solve(&asm.cx, &b, None, &JacobiPreconditioner::from_matrix(&asm.cx), &opts)
            })
        });
        group.bench_with_input(BenchmarkId::new("plain", cells), &cells, |bch, _| {
            bch.iter(|| solve(&asm.cx, &b, None, &IdentityPreconditioner, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cg);
criterion_main!(benches);
