//! Criterion bench: the two Poisson force-field solvers across grid
//! sizes (supports ablation A1 and the CPU columns of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kraftwerk_field::{density_map, DirectSolver, FieldSolver, MultigridSolver};
use kraftwerk_netlist::synth::{generate, SynthConfig};

fn bench_solvers(c: &mut Criterion) {
    let nl = generate(&SynthConfig::with_size("bench_field", 2000, 2400, 20));
    let placement = nl.initial_placement();
    let mut group = c.benchmark_group("field_solvers");
    group.sample_size(10);
    for bins in [16usize, 32, 64] {
        let density = density_map(&nl, &placement, bins, (bins / 4).max(8));
        group.bench_with_input(BenchmarkId::new("direct", bins), &density, |b, d| {
            b.iter(|| DirectSolver::new().solve(d))
        });
        group.bench_with_input(BenchmarkId::new("multigrid", bins), &density, |b, d| {
            b.iter(|| MultigridSolver::new().solve(d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
