//! Criterion bench: Abacus legalization and detailed refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kraftwerk_core::{GlobalPlacer, KraftwerkConfig};
use kraftwerk_legalize::{legalize, refine};
use kraftwerk_netlist::synth::{generate, SynthConfig};

fn bench_legalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("legalization");
    group.sample_size(10);
    for cells in [1000usize, 4000] {
        let nl = generate(&SynthConfig::with_size("bench_lg", cells, cells * 12 / 10, 16));
        let global = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl).placement;
        group.bench_with_input(BenchmarkId::new("abacus", cells), &cells, |b, _| {
            b.iter(|| legalize(&nl, &global).expect("legalizable"))
        });
        let legal = legalize(&nl, &global).expect("legalizable");
        group.bench_with_input(BenchmarkId::new("refine", cells), &cells, |b, _| {
            b.iter_batched(
                || legal.clone(),
                |mut p| refine(&nl, &mut p, 1),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_legalize);
criterion_main!(benches);
