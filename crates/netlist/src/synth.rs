//! Deterministic synthetic benchmark generator.
//!
//! The paper evaluates on nine MCNC standard-cell circuits (`fract` …
//! `avq.large`) distributed through a long-gone FTP site \[15\]. Those files
//! are not available offline, so this module generates *MCNC-shaped*
//! circuits instead: the published cell/net/row counts are matched exactly,
//! net degrees follow the well-known MCNC distribution (predominantly 2–4
//! pin nets with a thin high-degree tail), and nets are drawn from a
//! locality model so that good placers produce substantially shorter wire
//! length than bad ones — the property all of the paper's comparisons rest
//! on. See `DESIGN.md` for the full substitution rationale.
//!
//! Circuits are also generated as DAGs (every net has exactly one driver
//! and edges only point "forward" through a level ordering), which gives
//! the timing experiments of Tables 3 and 4 well-defined longest paths.
//!
//! Everything is seeded: the same [`SynthConfig`] always yields the same
//! netlist, bit for bit.
//!
//! ```
//! use kraftwerk_netlist::synth::{SynthConfig, generate};
//! let nl = generate(&SynthConfig::with_size("tiny", 100, 130, 5));
//! assert_eq!(nl.num_movable(), 100);
//! assert_eq!(nl.num_nets(), 130);
//! ```

use crate::builder::NetlistBuilder;
use crate::ids::CellId;
use crate::model::{Netlist, PinDirection};
use kraftwerk_geom::{Point, Rect, Size};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of a synthetic circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Design name.
    pub name: String,
    /// Number of movable standard cells.
    pub cells: usize,
    /// Number of cell-to-cell nets (pad nets come on top of this count
    /// only if `extra_pad_nets` is set; by default pad nets are counted
    /// within this total).
    pub nets: usize,
    /// Number of standard-cell rows.
    pub rows: usize,
    /// Number of I/O pads on the core boundary.
    pub pads: usize,
    /// Number of movable macro blocks (floorplanning designs).
    pub blocks: usize,
    /// RNG seed; every value yields a different but reproducible circuit.
    pub seed: u64,
    /// Standard-cell row height in layout units (microns).
    pub row_height: f64,
    /// Target core utilization (movable area / core area).
    pub utilization: f64,
    /// Cap on net degree (clock-like nets saturate here).
    pub max_net_degree: usize,
    /// Number of logic levels for the DAG structure.
    pub logic_depth: usize,
    /// Mean standard-cell width in layout units.
    pub avg_cell_width: f64,
    /// When set, net degrees are drawn from a Rent-style power-law
    /// distribution with this Rent exponent `p` instead of the empirical
    /// MCNC mixture: the tail follows `P(d) ∝ d^−(1+1/p)`, the scaling
    /// law observed in real partitioned logic. Used by the large
    /// [`scale`] tiers, where the MCNC mixture (fitted at ≤25k cells)
    /// under-represents mid-degree nets.
    pub rent_exponent: Option<f64>,
}

impl SynthConfig {
    /// A config with MCNC-style defaults for the given headline counts.
    #[must_use]
    pub fn with_size(name: impl Into<String>, cells: usize, nets: usize, rows: usize) -> Self {
        let pads = ((cells as f64).sqrt() * 3.0).round().clamp(12.0, 512.0) as usize;
        let logic_depth = (((cells as f64).log2() * 2.0).round() as usize).max(4);
        Self {
            name: name.into(),
            cells,
            nets,
            rows,
            pads,
            blocks: 0,
            seed: 0xC0FFEE,
            row_height: 16.0,
            utilization: 0.8,
            max_net_degree: 96,
            logic_depth,
            avg_cell_width: 8.0,
            rent_exponent: None,
        }
    }

    /// Overrides the seed, returning the modified config (builder-style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds movable macro blocks for mixed block/cell floorplanning
    /// experiments.
    #[must_use]
    pub fn blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Switches the degree distribution to a Rent-style power law with
    /// the given Rent exponent (typical logic: 0.55–0.75).
    #[must_use]
    pub fn rent(mut self, exponent: f64) -> Self {
        self.rent_exponent = Some(exponent);
        self
    }
}

/// Samples a net degree from an MCNC-shaped distribution, clipped to
/// `[2, max]`.
fn sample_degree(rng: &mut ChaCha8Rng, max: usize) -> usize {
    let u: f64 = rng.gen();
    let d = if u < 0.58 {
        2
    } else if u < 0.76 {
        3
    } else if u < 0.86 {
        4
    } else if u < 0.92 {
        5
    } else {
        // Geometric tail: 6, 7, 8, ... with ratio 0.72, rare big nets.
        let mut d = 6;
        while rng.gen::<f64>() < 0.72 && d < max {
            d += 1;
        }
        if rng.gen::<f64>() < 0.02 {
            d = rng.gen_range(d..=max.max(d));
        }
        d
    };
    d.clamp(2, max.max(2))
}

/// Samples a net degree from a Rent-style mixture, clipped to `[2, max]`:
/// short nets dominate as in any logic netlist, but the tail is a Pareto
/// power law `P(d) ∝ d^−(1+1/p)` for Rent exponent `p`, sampled by
/// inverse CDF as `d = 2·v^(−p)`. Larger `p` means heavier tails — the
/// scaling law connecting partition size to external connections that
/// the MCNC mixture (fitted at ≤25k cells) does not extrapolate.
fn sample_degree_rent(rng: &mut ChaCha8Rng, max: usize, rent: f64) -> usize {
    let u: f64 = rng.gen();
    let d = if u < 0.55 {
        2
    } else if u < 0.72 {
        3
    } else if u < 0.82 {
        4
    } else {
        let v: f64 = rng.gen::<f64>().max(1e-12);
        (2.0 * v.powf(-rent)) as usize
    };
    d.clamp(2, max.max(2))
}

/// Samples a locality window size (in cell-index space) for a net. Mostly
/// tight windows with occasional global nets — this is what makes
/// placement optimization worthwhile.
fn sample_window(rng: &mut ChaCha8Rng, n: usize, degree: usize) -> usize {
    let u: f64 = rng.gen();
    let w = if u < 0.70 {
        rng.gen_range(8..=48)
    } else if u < 0.92 {
        rng.gen_range(32..=(n / 12).max(64))
    } else {
        rng.gen_range((n / 8).max(64)..=(n / 2).max(96))
    };
    let lo = degree.saturating_mul(2).max(4).min(n.max(4));
    w.clamp(lo, n.max(4))
}

/// Generates a synthetic netlist from a config.
///
/// # Panics
///
/// Panics if `cells < 4` or `rows == 0` — configs below that size are not
/// meaningful circuits.
#[must_use]
pub fn generate(config: &SynthConfig) -> Netlist {
    assert!(config.cells >= 4, "need at least 4 cells");
    assert!(config.rows > 0, "need at least one row");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut b = NetlistBuilder::new();
    b.name(config.name.clone());

    // --- cell sizes -----------------------------------------------------
    let n = config.cells;
    let h = config.row_height;
    let widths: Vec<f64> = (0..n)
        .map(|_| {
            let f: f64 = rng.gen_range(0.4..2.2);
            (config.avg_cell_width * f).max(1.0)
        })
        .collect();
    let cell_area: f64 = widths.iter().map(|w| w * h).sum();

    // Blocks must be stackable within the die: at most half the core
    // height, and modest total area, or no legal floorplan exists.
    let max_block_height = (config.rows as f64 * h) * 0.45;
    let block_sizes: Vec<Size> = (0..config.blocks)
        .map(|_| {
            let area_factor: f64 = rng.gen_range(20.0..140.0);
            let area = config.avg_cell_width * h * area_factor;
            let aspect: f64 = rng.gen_range(0.5..2.0);
            let bw = (area * aspect).sqrt();
            let bh = (area / bw).min(max_block_height);
            Size::new(area / bh, bh)
        })
        .collect();
    let block_area: f64 = block_sizes.iter().map(|s| s.area()).sum();

    // --- core geometry ---------------------------------------------------
    let core_height = config.rows as f64 * h;
    let core_width = ((cell_area + block_area) / (config.utilization * core_height)).max(h * 2.0);
    let core = Rect::new(0.0, 0.0, core_width, core_height);
    b.core_region(core);
    b.rows(config.rows, h);

    // --- movable cells ----------------------------------------------------
    // Cell index order doubles as the locality key: indices map to notional
    // serpentine row positions, so index-local nets are spatially local in
    // an ideal placement.
    let cells: Vec<CellId> = (0..n)
        .map(|i| {
            let id = b.add_cell(format!("u{i}"), Size::new(widths[i], h));
            b.set_delay(id, rng.gen_range(0.05..0.45));
            b.set_power(id, rng.gen_range(0.1..2.0) * widths[i] / config.avg_cell_width);
            id
        })
        .collect();

    let block_ids: Vec<CellId> = block_sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let id = b.add_block(format!("blk{i}"), s);
            b.set_delay(id, rng.gen_range(0.3..1.2));
            b.set_power(id, rng.gen_range(5.0..25.0));
            id
        })
        .collect();

    // Logic levels: the driver of a net is the pin with the smallest
    // (level, index) in the net, so edges always point forward -> DAG.
    let levels: Vec<u32> = (0..n + config.blocks)
        .map(|_| rng.gen_range(0..config.logic_depth as u32))
        .collect();
    let level_of = |id: CellId, pads_start: usize| -> u32 {
        if id.index() < pads_start {
            levels[id.index()]
        } else {
            0
        }
    };

    // --- pads on the periphery --------------------------------------------
    let pads_start = n + config.blocks;
    let pad_size = Size::new(h * 0.5, h * 0.5);
    let mut pad_ids = Vec::with_capacity(config.pads);
    for i in 0..config.pads {
        // Walk the boundary: fraction t in [0,1) mapped to the 4 edges.
        let t = i as f64 / config.pads as f64;
        let peri = 2.0 * (core_width + core_height);
        let d = t * peri;
        // Pad centers sit half a pad outside the core (an I/O ring), so
        // pads never eat standard-cell row capacity.
        let out = pad_size.width * 0.5;
        let at = if d < core_width {
            Point::new(d, -out)
        } else if d < core_width + core_height {
            Point::new(core_width + out, d - core_width)
        } else if d < 2.0 * core_width + core_height {
            Point::new(2.0 * core_width + core_height - d, core_height + out)
        } else {
            Point::new(-out, peri - d)
        };
        pad_ids.push(b.add_fixed_cell(format!("pad{i}"), pad_size, at));
    }

    // --- nets ---------------------------------------------------------------
    // Reserve one net per pad (I/O connectivity); the rest are cell nets.
    let pad_nets = config.pads.min(config.nets / 4);
    let cell_nets = config.nets - pad_nets;

    let all_movable: Vec<CellId> = cells.iter().chain(&block_ids).copied().collect();
    let m = all_movable.len();

    let mut net_no = 0usize;
    for _ in 0..cell_nets {
        let degree = match config.rent_exponent {
            Some(p) => sample_degree_rent(&mut rng, config.max_net_degree, p),
            None => sample_degree(&mut rng, config.max_net_degree),
        };
        let window = sample_window(&mut rng, m, degree);
        let start = rng.gen_range(0..m.saturating_sub(window).max(1));
        // Sample `degree` distinct members of the window.
        let mut members = Vec::with_capacity(degree);
        let mut guard = 0;
        while members.len() < degree && guard < degree * 30 {
            guard += 1;
            let idx = start + rng.gen_range(0..window.min(m - start));
            let id = all_movable[idx];
            if !members.contains(&id) {
                members.push(id);
            }
        }
        if members.len() < 2 {
            // Degenerate window; fall back to a random pair.
            members = all_movable
                .choose_multiple(&mut rng, 2)
                .copied()
                .collect();
        }
        // Driver: minimal (level, index).
        members.sort_by_key(|&id| (level_of(id, pads_start), id.index()));
        let pins = members
            .iter()
            .enumerate()
            .map(|(j, &id)| {
                let dir = if j == 0 {
                    PinDirection::Output
                } else {
                    PinDirection::Input
                };
                (id, dir)
            })
            .collect::<Vec<_>>();
        b.add_net(format!("n{net_no}"), pins);
        net_no += 1;
    }

    // Pad nets: a pad connects to 1-4 cells whose notional serpentine
    // position projects near the pad. Alternate input/output pads.
    for (i, &pad) in pad_ids.iter().enumerate().take(pad_nets) {
        let frac = i as f64 / config.pads.max(1) as f64;
        let anchor = ((frac * m as f64) as usize).min(m - 1);
        let fan = rng.gen_range(1..=4usize);
        let window = 64.min(m);
        let lo = anchor.saturating_sub(window / 2).min(m - window.min(m));
        let mut members = Vec::new();
        let mut guard = 0;
        while members.len() < fan && guard < fan * 30 {
            guard += 1;
            let idx = lo + rng.gen_range(0..window);
            let id = all_movable[idx.min(m - 1)];
            if !members.contains(&id) {
                members.push(id);
            }
        }
        if members.is_empty() {
            members.push(all_movable[anchor]);
        }
        let input_pad = i % 2 == 0;
        let mut pins = Vec::with_capacity(members.len() + 1);
        if input_pad {
            pins.push((pad, PinDirection::Output));
            pins.extend(members.iter().map(|&c| (c, PinDirection::Input)));
        } else {
            // Output pad net: same driver rule as cell nets — the member
            // with the minimal (level, index) drives, everything else
            // (including the pad) sinks, so all edges stay forward.
            members.sort_by_key(|&id| (level_of(id, pads_start), id.index()));
            let driver = members[0];
            pins.push((driver, PinDirection::Output));
            pins.push((pad, PinDirection::Input));
            pins.extend(members.iter().skip(1).map(|&c| (c, PinDirection::Input)));
        }
        b.add_net(format!("n{net_no}"), pins);
        net_no += 1;
    }

    // Guarantee connectivity: attach any cell the random net sampling
    // missed to an index-nearby net, and any pad beyond the pad-net
    // budget to a net near its boundary anchor (keeps net counts intact;
    // real circuits have no floating cells or pads). Added pins are
    // always sinks, so the DAG property is preserved.
    let nets_so_far = net_no;
    if nets_so_far > 0 {
        for (slot, &id) in all_movable.iter().enumerate() {
            if b.is_connected(id) {
                continue;
            }
            // Nets were generated windowed over index space; a net with a
            // nearby ordinal tends to involve nearby cells.
            let guess = (slot as f64 / m as f64 * nets_so_far as f64) as usize;
            let net = crate::NetId::from_index(
                (guess + rng.gen_range(0..8)).min(nets_so_far - 1),
            );
            b.add_pin_to_net(net, id, PinDirection::Input);
        }
        for (i, &pad) in pad_ids.iter().enumerate() {
            if b.is_connected(pad) {
                continue;
            }
            let frac = i as f64 / config.pads.max(1) as f64;
            let guess = ((frac * nets_so_far as f64) as usize).min(nets_so_far - 1);
            b.add_pin_to_net(crate::NetId::from_index(guess), pad, PinDirection::Input);
        }
    }

    b.build().expect("generator produces valid netlists")
}

/// Presets matching the nine circuits of the paper's Table 1, plus a
/// scaled variant for the 210k-cell fast-mode experiment.
///
/// Cell/net/row counts follow the published MCNC statistics (sources vary
/// by a few cells; the values here are the commonly cited ones).
pub mod mcnc {
    use super::{generate, Netlist, SynthConfig};

    /// One Table 1 circuit: name and headline statistics.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Preset {
        /// Circuit name as used in the paper.
        pub name: &'static str,
        /// Movable cell count.
        pub cells: usize,
        /// Net count.
        pub nets: usize,
        /// Standard-cell row count.
        pub rows: usize,
    }

    /// All nine circuits of Table 1 in paper order.
    pub const TABLE1: [Preset; 9] = [
        Preset { name: "fract", cells: 125, nets: 147, rows: 6 },
        Preset { name: "primary1", cells: 833, nets: 902, rows: 16 },
        Preset { name: "struct", cells: 1952, nets: 1920, rows: 21 },
        Preset { name: "primary2", cells: 3014, nets: 3029, rows: 28 },
        Preset { name: "biomed", cells: 6417, nets: 5742, rows: 46 },
        Preset { name: "industry2", cells: 12142, nets: 13419, rows: 72 },
        Preset { name: "industry3", cells: 15059, nets: 21940, rows: 54 },
        Preset { name: "avq.small", cells: 21854, nets: 22124, rows: 80 },
        Preset { name: "avq.large", cells: 25114, nets: 25384, rows: 86 },
    ];

    /// The five circuits used in the timing experiments (Tables 3 and 4).
    pub const TIMING_CIRCUITS: [&str; 5] =
        ["fract", "struct", "biomed", "avq.small", "avq.large"];

    /// Generates the synthetic stand-in for a Table 1 circuit by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the Table 1 circuit names.
    #[must_use]
    pub fn by_name(name: &str) -> Netlist {
        let preset = TABLE1
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("unknown MCNC circuit `{name}`"));
        generate(&config_for(*preset))
    }

    /// The generator config for a preset (exposed so experiments can tweak
    /// seeds or utilization).
    #[must_use]
    pub fn config_for(preset: Preset) -> SynthConfig {
        SynthConfig::with_size(preset.name, preset.cells, preset.nets, preset.rows)
            .seed(0x4DAC_1998 ^ preset.cells as u64)
    }

    /// The scaled circuit for the paper's "210000 cells within 10 minutes"
    /// fast-mode claim (section 6.1).
    #[must_use]
    pub fn giant() -> SynthConfig {
        SynthConfig::with_size("giant210k", 210_000, 230_000, 260).seed(0x21_0000)
    }
}

/// Scaling-curve tiers beyond the MCNC range: 10k → 1M cells.
///
/// These measure how wall clock grows with design size under the
/// multilevel + bound-to-bound flow (`kraftwerk place --multilevel`,
/// `kraftwerk bench` mode `multilevel-b2b`). Net counts keep the
/// MCNC-typical net/cell ratio of ~1.15, row counts make the core
/// roughly square, and degrees follow a Rent-style power-law tail
/// (`SynthConfig::rent`), which the MCNC mixture does not extrapolate
/// to these sizes.
pub mod scale {
    use super::{generate, Netlist, SynthConfig};

    /// One scaling tier: name and headline statistics.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Tier {
        /// Tier name (`scale10k` … `scale1m`).
        pub name: &'static str,
        /// Movable cell count.
        pub cells: usize,
        /// Net count (≈1.15× cells, the MCNC-typical ratio).
        pub nets: usize,
        /// Standard-cell row count (roughly square core).
        pub rows: usize,
    }

    /// All tiers in ascending size. The 1M tier exists for headroom
    /// experiments; the recorded scaling curve uses 10k/50k/250k.
    pub const TIERS: [Tier; 4] = [
        Tier { name: "scale10k", cells: 10_000, nets: 11_500, rows: 90 },
        Tier { name: "scale50k", cells: 50_000, nets: 57_500, rows: 200 },
        Tier { name: "scale250k", cells: 250_000, nets: 287_500, rows: 448 },
        Tier { name: "scale1m", cells: 1_000_000, nets: 1_150_000, rows: 896 },
    ];

    /// Rent exponent for the tiers' degree distribution — mid-range for
    /// random logic.
    pub const RENT_EXPONENT: f64 = 0.65;

    /// The generator config for a tier (exposed so experiments can tweak
    /// seeds or utilization).
    #[must_use]
    pub fn config_for(tier: Tier) -> SynthConfig {
        SynthConfig::with_size(tier.name, tier.cells, tier.nets, tier.rows)
            .seed(0x5CA1_E000 ^ tier.cells as u64)
            .rent(RENT_EXPONENT)
    }

    /// Generates a scaling tier by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the tier names.
    #[must_use]
    pub fn by_name(name: &str) -> Netlist {
        let tier = TIERS
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("unknown scale tier `{name}`"));
        generate(&config_for(*tier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::hpwl;
    use crate::stats::NetlistStats;

    #[test]
    fn generator_matches_requested_counts() {
        let cfg = SynthConfig::with_size("t", 200, 260, 8);
        let nl = generate(&cfg);
        assert_eq!(nl.num_movable(), 200);
        assert_eq!(nl.num_nets(), 260);
        assert_eq!(nl.rows().len(), 8);
        assert_eq!(nl.num_cells(), 200 + cfg.pads);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = SynthConfig::with_size("t", 150, 180, 6);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(crate::format::write_netlist(&a), crate::format::write_netlist(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::with_size("t", 150, 180, 6).seed(1));
        let b = generate(&SynthConfig::with_size("t", 150, 180, 6).seed(2));
        assert_ne!(crate::format::write_netlist(&a), crate::format::write_netlist(&b));
    }

    #[test]
    fn degree_distribution_is_mcnc_shaped() {
        let nl = generate(&SynthConfig::with_size("t", 2000, 2400, 20));
        let stats = NetlistStats::collect(&nl);
        // Predominantly 2-pin nets, mean degree between 2 and 4.5.
        assert!(stats.degree_fraction(2) > 0.4, "2-pin fraction {}", stats.degree_fraction(2));
        assert!(stats.avg_net_degree > 2.0 && stats.avg_net_degree < 4.5);
        assert!(stats.max_net_degree <= 96);
    }

    #[test]
    fn every_net_has_exactly_one_driver() {
        let nl = generate(&SynthConfig::with_size("t", 300, 380, 8));
        for (id, net) in nl.nets() {
            let drivers = net
                .pins()
                .iter()
                .filter(|&&p| nl.pin(p).direction() == PinDirection::Output)
                .count();
            assert_eq!(drivers, 1, "net {id} has {drivers} drivers");
        }
    }

    #[test]
    fn utilization_is_near_target() {
        let nl = generate(&SynthConfig::with_size("t", 1000, 1200, 12));
        assert!((nl.utilization() - 0.8).abs() < 0.05, "utilization {}", nl.utilization());
    }

    #[test]
    fn pads_are_on_the_boundary() {
        let nl = generate(&SynthConfig::with_size("t", 200, 260, 8));
        let core = nl.core_region();
        for (_, cell) in nl.cells() {
            if let Some(p) = cell.fixed_position() {
                let half = cell.size().width * 0.5;
                let on_ring = (p.x - (core.x_lo - half)).abs() < 1e-9
                    || (p.x - (core.x_hi + half)).abs() < 1e-9
                    || (p.y - (core.y_lo - half)).abs() < 1e-9
                    || (p.y - (core.y_hi + half)).abs() < 1e-9;
                assert!(on_ring, "pad {} at {p} not on the I/O ring", cell.name());
            }
        }
    }

    #[test]
    fn locality_matters_ideal_vs_scrambled() {
        // Placing cells at their notional serpentine locations must yield
        // much shorter wire length than a scrambled arrangement; otherwise
        // the benchmark cannot discriminate placers.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let nl = generate(&SynthConfig::with_size("t", 1200, 1500, 12));
        let core = nl.core_region();
        let rows = nl.rows().len();
        let n = nl.num_movable();
        let per_row = n.div_ceil(rows);
        let mut ideal = nl.initial_placement();
        let movables: Vec<_> = nl.movable_cells().map(|(id, _)| id).collect();
        let notional = |slot: usize| {
            let r = slot / per_row;
            let c = slot % per_row;
            let frac = (c as f64 + 0.5) / per_row as f64;
            // serpentine: odd rows run right-to-left
            let x = if r % 2 == 0 { frac } else { 1.0 - frac } * core.width();
            let y = (r as f64 + 0.5) / rows as f64 * core.height();
            kraftwerk_geom::Point::new(x, y)
        };
        for (slot, &id) in movables.iter().enumerate() {
            ideal.set_position(id, notional(slot));
        }
        let mut scrambled = ideal.clone();
        let mut slots: Vec<usize> = (0..movables.len()).collect();
        slots.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(7));
        for (i, &id) in movables.iter().enumerate() {
            scrambled.set_position(id, notional(slots[i]));
        }
        let good = hpwl(&nl, &ideal);
        let bad = hpwl(&nl, &scrambled);
        assert!(
            bad > 2.0 * good,
            "scrambled {bad:.0} should be >> ideal {good:.0}"
        );
    }

    #[test]
    fn blocks_are_generated_when_requested() {
        let nl = generate(&SynthConfig::with_size("t", 300, 380, 8).blocks(5));
        let stats = NetlistStats::collect(&nl);
        assert_eq!(stats.blocks, 5);
        // Blocks are much larger than cells.
        let max_block = nl
            .cells()
            .filter(|(_, c)| c.kind() == crate::CellKind::Block)
            .map(|(_, c)| c.area())
            .fold(0.0, f64::max);
        assert!(max_block > 50.0 * nl.average_cell_area() / 2.0);
    }

    #[test]
    fn mcnc_presets_have_table1_counts() {
        let nl = mcnc::by_name("fract");
        assert_eq!(nl.num_movable(), 125);
        assert_eq!(nl.num_nets(), 147);
        assert_eq!(nl.rows().len(), 6);
        assert_eq!(mcnc::TABLE1.len(), 9);
        assert_eq!(mcnc::TABLE1[8].cells, 25114);
    }

    #[test]
    #[should_panic(expected = "unknown MCNC circuit")]
    fn unknown_preset_panics() {
        let _ = mcnc::by_name("does-not-exist");
    }

    #[test]
    fn scale_tiers_match_requested_counts() {
        let nl = scale::by_name("scale10k");
        assert_eq!(nl.num_movable(), 10_000);
        assert_eq!(nl.num_nets(), 11_500);
        assert_eq!(nl.rows().len(), 90);
        assert_eq!(scale::TIERS.len(), 4);
        assert_eq!(scale::TIERS[3].cells, 1_000_000);
    }

    #[test]
    fn rent_degree_distribution_has_a_power_law_tail() {
        let nl = generate(&scale::config_for(scale::TIERS[0]));
        let stats = NetlistStats::collect(&nl);
        // Still predominantly short nets with a sane mean…
        assert!(stats.degree_fraction(2) > 0.4, "2-pin fraction {}", stats.degree_fraction(2));
        assert!(
            stats.avg_net_degree > 2.2 && stats.avg_net_degree < 5.0,
            "mean degree {}",
            stats.avg_net_degree
        );
        // …and a tail that decays polynomially, not geometrically: for
        // P(d) ∝ d^−(1+1/p) with p = 0.65, quadrupling the threshold
        // divides the tail count by 4^(1/p) ≈ 8.4. A geometric tail with
        // the MCNC mixture's 0.72 ratio would shrink by 0.72^−24 ≈ 2700×.
        let tail = |d0: usize| {
            nl.nets().filter(|(_, net)| net.pins().len() >= d0).count()
        };
        assert!(tail(8) > 100, "tail(8) = {}", tail(8));
        assert!(tail(32) > 5, "tail(32) = {}", tail(32));
        assert!(
            tail(8) < 40 * tail(32),
            "tail decays geometrically: tail(8) {} vs tail(32) {}",
            tail(8),
            tail(32)
        );
    }

    #[test]
    fn scale_tiers_are_deterministic() {
        let a = generate(&scale::config_for(scale::TIERS[0]));
        let b = generate(&scale::config_for(scale::TIERS[0]));
        assert_eq!(crate::format::write_netlist(&a), crate::format::write_netlist(&b));
    }

    #[test]
    #[should_panic(expected = "unknown scale tier")]
    fn unknown_scale_tier_panics() {
        let _ = scale::by_name("scale9000");
    }
}
