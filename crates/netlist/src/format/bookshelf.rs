//! GSRC Bookshelf format support (`.aux`/`.nodes`/`.nets`/`.pl`/`.scl`).
//!
//! The Bookshelf suite is the standard interchange format of the academic
//! placement community (the successor of the MCNC formats the paper's
//! benchmarks were distributed in). This module writes and reads the
//! row-based-placement subset sufficient to exchange every netlist in
//! this workspace with external tools:
//!
//! * `.nodes` — cell names and dimensions (`terminal` marks pads),
//! * `.nets` — pin lists with center-relative offsets and I/O directions,
//! * `.pl` — placements (lower-left corners; `/FIXED` for pads),
//! * `.scl` — standard-cell rows,
//! * `.aux` — the index file tying them together.
//!
//! ```
//! use kraftwerk_netlist::format::bookshelf;
//! use kraftwerk_netlist::synth::{generate, SynthConfig};
//!
//! let nl = generate(&SynthConfig::with_size("bs", 60, 80, 4));
//! let files = bookshelf::write(&nl, Some(&nl.initial_placement()));
//! let (back, placement) = bookshelf::read(&files)?;
//! assert_eq!(back.num_cells(), nl.num_cells());
//! assert!(placement.is_some());
//! # Ok::<(), bookshelf::BookshelfError>(())
//! ```

use crate::builder::NetlistBuilder;
use crate::ids::CellId;
use crate::model::{CellKind, Netlist, PinDirection};
use crate::placement::Placement;
use kraftwerk_geom::{Point, Rect, Size, Vector};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A Bookshelf design as an in-memory file set, keyed by extension
/// (`"nodes"`, `"nets"`, `"pl"`, `"scl"`, `"aux"`).
pub type Files = BTreeMap<String, String>;

/// Bookshelf parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct BookshelfError {
    /// Which file the problem is in (`nodes`, `nets`, …).
    pub file: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for BookshelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}: {}", self.file, self.message)
    }
}

impl Error for BookshelfError {}

fn err(file: &str, message: impl Into<String>) -> BookshelfError {
    BookshelfError {
        file: file.to_owned(),
        message: message.into(),
    }
}

/// Content lines of a Bookshelf file: header and comments stripped.
fn content_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with("UCLA"))
}

/// Serializes a netlist (and optionally a placement) to Bookshelf files.
/// Pads always get `.pl` entries; movable cells only when `placement` is
/// provided.
#[must_use]
pub fn write(netlist: &Netlist, placement: Option<&Placement>) -> Files {
    let name = netlist.name();
    let mut files = Files::new();

    // .nodes
    let mut nodes = String::from("UCLA nodes 1.0\n\n");
    let terminals = netlist.num_cells() - netlist.num_movable();
    let _ = writeln!(nodes, "NumNodes : {}", netlist.num_cells());
    let _ = writeln!(nodes, "NumTerminals : {terminals}");
    for (_, cell) in netlist.cells() {
        let _ = write!(
            nodes,
            "   {} {} {}",
            cell.name(),
            cell.size().width,
            cell.size().height
        );
        if cell.kind() == CellKind::Fixed {
            nodes.push_str(" terminal");
        }
        nodes.push('\n');
    }
    files.insert("nodes".into(), nodes);

    // .nets
    let mut nets = String::from("UCLA nets 1.0\n\n");
    let _ = writeln!(nets, "NumNets : {}", netlist.num_nets());
    let _ = writeln!(nets, "NumPins : {}", netlist.num_pins());
    for (_, net) in netlist.nets() {
        let _ = writeln!(nets, "NetDegree : {} {}", net.degree(), net.name());
        for &pid in net.pins() {
            let pin = netlist.pin(pid);
            let dir = match pin.direction() {
                PinDirection::Input => 'I',
                PinDirection::Output => 'O',
            };
            let _ = writeln!(
                nets,
                "   {} {} : {:.6} {:.6}",
                netlist.cell(pin.cell()).name(),
                dir,
                pin.offset().x,
                pin.offset().y
            );
        }
    }
    files.insert("nets".into(), nets);

    // .pl — lower-left corners, Bookshelf convention.
    let mut pl = String::from("UCLA pl 1.0\n\n");
    for (id, cell) in netlist.cells() {
        let center = match cell.kind() {
            CellKind::Fixed => cell.fixed_position(),
            _ => placement.map(|p| p.position(id)),
        };
        let Some(center) = center else { continue };
        let ll = Point::new(
            center.x - cell.size().width * 0.5,
            center.y - cell.size().height * 0.5,
        );
        let _ = write!(pl, "{} {:.6} {:.6} : N", cell.name(), ll.x, ll.y);
        if cell.kind() == CellKind::Fixed {
            pl.push_str(" /FIXED");
        }
        pl.push('\n');
    }
    files.insert("pl".into(), pl);

    // .scl
    let mut scl = String::from("UCLA scl 1.0\n\n");
    let _ = writeln!(scl, "NumRows : {}", netlist.rows().len());
    for row in netlist.rows() {
        let _ = writeln!(scl, "CoreRow Horizontal");
        let _ = writeln!(scl, " Coordinate : {:.6}", row.y);
        let _ = writeln!(scl, " Height : {:.6}", row.height);
        let _ = writeln!(scl, " Sitewidth : 1");
        let _ = writeln!(scl, " Sitespacing : 1");
        let _ = writeln!(scl, " Siteorient : N");
        let _ = writeln!(scl, " Sitesymmetry : Y");
        let _ = writeln!(scl, " SubrowOrigin : {:.6} NumSites : {:.0}", row.x_lo, row.width());
        let _ = writeln!(scl, "End");
    }
    files.insert("scl".into(), scl);

    files.insert(
        "aux".into(),
        format!("RowBasedPlacement : {name}.nodes {name}.nets {name}.pl {name}.scl\n"),
    );
    files
}

/// Parses a Bookshelf file set back into a netlist and (when movable
/// cells appear in the `.pl`) a placement.
///
/// # Errors
///
/// Returns [`BookshelfError`] for missing files or malformed content.
#[allow(clippy::too_many_lines)]
pub fn read(files: &Files) -> Result<(Netlist, Option<Placement>), BookshelfError> {
    let get = |key: &str| {
        files
            .get(key)
            .ok_or_else(|| err(key, "file missing from set"))
    };

    // --- .scl first: rows define the core region. -----------------------
    let scl = get("scl")?;
    struct RowSpec {
        y: f64,
        height: f64,
        x_lo: f64,
        width: f64,
    }
    let mut rows: Vec<RowSpec> = Vec::new();
    let mut current: Option<RowSpec> = None;
    for line in content_lines(scl) {
        if line.starts_with("CoreRow") {
            current = Some(RowSpec {
                y: 0.0,
                height: 0.0,
                x_lo: 0.0,
                width: 0.0,
            });
        } else if line == "End" {
            if let Some(r) = current.take() {
                rows.push(r);
            }
        } else if let Some(row) = current.as_mut() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let value = |i: usize| -> Result<f64, BookshelfError> {
                toks.get(i)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("scl", format!("bad row line `{line}`")))
            };
            match toks.first() {
                Some(&"Coordinate") => row.y = value(2)?,
                Some(&"Height") => row.height = value(2)?,
                Some(&"SubrowOrigin") => {
                    row.x_lo = value(2)?;
                    // "SubrowOrigin : x NumSites : n"
                    row.width = value(5)?;
                }
                _ => {}
            }
        }
    }

    // --- .nodes ----------------------------------------------------------
    let nodes = get("nodes")?;
    struct NodeSpec {
        name: String,
        size: Size,
        terminal: bool,
    }
    let mut node_specs = Vec::new();
    for line in content_lines(nodes) {
        if line.starts_with("NumNodes") || line.starts_with("NumTerminals") {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 {
            return Err(err("nodes", format!("bad node line `{line}`")));
        }
        let width: f64 = toks[1]
            .parse()
            .map_err(|_| err("nodes", format!("bad width in `{line}`")))?;
        let height: f64 = toks[2]
            .parse()
            .map_err(|_| err("nodes", format!("bad height in `{line}`")))?;
        node_specs.push(NodeSpec {
            name: toks[0].to_owned(),
            size: Size::new(width, height),
            terminal: toks.get(3) == Some(&"terminal"),
        });
    }

    // --- .pl -------------------------------------------------------------
    let pl = get("pl")?;
    let mut positions: HashMap<String, Point> = HashMap::new();
    for line in content_lines(pl) {
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 {
            return Err(err("pl", format!("bad placement line `{line}`")));
        }
        let x: f64 = toks[1]
            .parse()
            .map_err(|_| err("pl", format!("bad x in `{line}`")))?;
        let y: f64 = toks[2]
            .parse()
            .map_err(|_| err("pl", format!("bad y in `{line}`")))?;
        positions.insert(toks[0].to_owned(), Point::new(x, y));
    }

    // --- assemble the builder ---------------------------------------------
    let mut builder = NetlistBuilder::new();
    // Core region: bounding box of the rows (the Bookshelf convention).
    let core = if rows.is_empty() {
        return Err(err("scl", "no CoreRow entries"));
    } else {
        let x_lo = rows.iter().map(|r| r.x_lo).fold(f64::INFINITY, f64::min);
        let x_hi = rows
            .iter()
            .map(|r| r.x_lo + r.width)
            .fold(f64::NEG_INFINITY, f64::max);
        let y_lo = rows.iter().map(|r| r.y).fold(f64::INFINITY, f64::min);
        let y_hi = rows
            .iter()
            .map(|r| r.y + r.height)
            .fold(f64::NEG_INFINITY, f64::max);
        Rect::new(x_lo, y_lo, x_hi, y_hi)
    };
    builder.core_region(core);
    builder.rows(rows.len(), rows.first().map_or(0.0, |r| r.height));
    builder.name("bookshelf");

    let mut by_name: HashMap<String, CellId> = HashMap::new();
    let mut movable_positions: Vec<(CellId, Point)> = Vec::new();
    for spec in &node_specs {
        let id = if spec.terminal {
            let ll = positions.get(&spec.name).copied().ok_or_else(|| {
                err("pl", format!("terminal `{}` has no placement", spec.name))
            })?;
            let center = Point::new(ll.x + spec.size.width * 0.5, ll.y + spec.size.height * 0.5);
            builder.add_fixed_cell(&spec.name, spec.size, center)
        } else {
            let id = builder.add_cell(&spec.name, spec.size);
            if let Some(ll) = positions.get(&spec.name) {
                movable_positions.push((
                    id,
                    Point::new(ll.x + spec.size.width * 0.5, ll.y + spec.size.height * 0.5),
                ));
            }
            id
        };
        if by_name.insert(spec.name.clone(), id).is_some() {
            return Err(err("nodes", format!("duplicate node `{}`", spec.name)));
        }
    }

    // --- .nets -------------------------------------------------------------
    let nets = get("nets")?;
    let mut lines = content_lines(nets).peekable();
    let mut net_no = 0usize;
    while let Some(line) = lines.next() {
        if line.starts_with("NumNets") || line.starts_with("NumPins") {
            continue;
        }
        let Some(rest) = line.strip_prefix("NetDegree") else {
            return Err(err("nets", format!("expected NetDegree, got `{line}`")));
        };
        let toks: Vec<&str> = rest
            .trim_start_matches([' ', ':'])
            .split_whitespace()
            .collect();
        let degree: usize = toks
            .first()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("nets", format!("bad NetDegree `{line}`")))?;
        let name = toks
            .get(1)
            .map_or_else(|| format!("n{net_no}"), |s| (*s).to_owned());
        let mut pins = Vec::with_capacity(degree);
        for _ in 0..degree {
            let pin_line = lines
                .next()
                .ok_or_else(|| err("nets", format!("net `{name}` truncated")))?;
            let toks: Vec<&str> = pin_line.split_whitespace().collect();
            if toks.len() < 2 {
                return Err(err("nets", format!("bad pin line `{pin_line}`")));
            }
            let cell = *by_name
                .get(toks[0])
                .ok_or_else(|| err("nets", format!("unknown node `{}`", toks[0])))?;
            let direction = match toks[1] {
                "O" => PinDirection::Output,
                _ => PinDirection::Input,
            };
            let (dx, dy) = if toks.len() >= 5 {
                (
                    toks[3].parse().unwrap_or(0.0),
                    toks[4].parse().unwrap_or(0.0),
                )
            } else {
                (0.0, 0.0)
            };
            pins.push((cell, Vector::new(dx, dy), direction));
        }
        builder.add_weighted_net(name, 1.0, pins);
        net_no += 1;
    }

    let netlist = builder
        .build()
        .map_err(|e| err("nets", format!("validation failed: {e}")))?;
    let placement = if movable_positions.is_empty() {
        None
    } else {
        let mut p = netlist.initial_placement();
        for (id, at) in movable_positions {
            p.set_position(id, at);
        }
        Some(p)
    };
    Ok((netlist, placement))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::synth::{generate, SynthConfig};

    fn sample() -> Netlist {
        generate(&SynthConfig::with_size("bs", 80, 100, 4))
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = sample();
        let files = write(&nl, None);
        assert!(files.contains_key("aux"));
        let (back, placement) = read(&files).unwrap();
        assert_eq!(back.num_cells(), nl.num_cells());
        assert_eq!(back.num_nets(), nl.num_nets());
        assert_eq!(back.num_pins(), nl.num_pins());
        assert_eq!(back.rows().len(), nl.rows().len());
        assert!(placement.is_none(), "no movable placement was written");
    }

    #[test]
    fn roundtrip_preserves_placement_and_hpwl() {
        let nl = sample();
        let original = nl.initial_placement();
        let files = write(&nl, Some(&original));
        let (back, placement) = read(&files).unwrap();
        let placement = placement.expect("movable placement present");
        let a = metrics::hpwl(&nl, &original);
        let b = metrics::hpwl(&back, &placement);
        assert!((a - b).abs() < 1e-3 * a.max(1.0), "hpwl {a} vs {b}");
    }

    #[test]
    fn terminals_roundtrip_as_fixed_cells() {
        let nl = sample();
        let files = write(&nl, None);
        let (back, _) = read(&files).unwrap();
        let fixed_before = nl.num_cells() - nl.num_movable();
        let fixed_after = back.num_cells() - back.num_movable();
        assert_eq!(fixed_before, fixed_after);
        // Pad positions survive.
        for (id, cell) in nl.cells() {
            if cell.kind() == CellKind::Fixed {
                let other = back
                    .cells()
                    .find(|(_, c)| c.name() == cell.name())
                    .expect("pad present");
                let a = cell.fixed_position().unwrap();
                let b = other.1.fixed_position().unwrap();
                assert!(a.distance(b) < 1e-6, "{} moved: {a} vs {b}", cell.name());
                let _ = id;
            }
        }
    }

    #[test]
    fn missing_file_is_reported() {
        let nl = sample();
        let mut files = write(&nl, None);
        files.remove("nets");
        let e = read(&files).unwrap_err();
        assert_eq!(e.file, "nets");
    }

    #[test]
    fn malformed_nodes_line_is_reported() {
        let nl = sample();
        let mut files = write(&nl, None);
        files.insert("nodes".into(), "UCLA nodes 1.0\nbogus\n".into());
        let e = read(&files).unwrap_err();
        assert_eq!(e.file, "nodes");
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_node_in_net_is_reported() {
        let nl = sample();
        let mut files = write(&nl, None);
        let nets = files["nets"].replace("   u1 ", "   ghost ");
        files.insert("nets".into(), nets);
        let e = read(&files).unwrap_err();
        assert_eq!(e.file, "nets");
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn scl_rows_roundtrip() {
        let nl = sample();
        let files = write(&nl, None);
        let (back, _) = read(&files).unwrap();
        for (a, b) in nl.rows().iter().zip(back.rows()) {
            assert!((a.y - b.y).abs() < 1e-6);
            assert!((a.height - b.height).abs() < 1e-6);
        }
    }
}
