//! Validating netlist construction.

use crate::ids::{CellId, NetId, PinId};
use crate::model::{Cell, CellKind, Net, Netlist, Pin, PinDirection, Row};
use kraftwerk_geom::{Point, Rect, Size, Vector};
use std::error::Error;
use std::fmt;

/// Errors detected by [`NetlistBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// No core region was provided.
    MissingCoreRegion,
    /// A net has fewer than two pins and can therefore not influence
    /// placement; carries the net name.
    DegenerateNet(String),
    /// A cell or net name is empty.
    EmptyName,
    /// A cell dimension is non-finite or non-positive; carries the cell
    /// name.
    InvalidDimension(String),
    /// The requested rows do not fit the core region vertically.
    RowsDoNotFit {
        /// Number of rows requested.
        rows: usize,
        /// Height of each row.
        row_height: f64,
        /// Vertical extent of the core region.
        core_height: f64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingCoreRegion => write!(f, "no core region was set"),
            BuildError::DegenerateNet(name) => {
                write!(f, "net `{name}` has fewer than two pins")
            }
            BuildError::EmptyName => write!(f, "cell or net name is empty"),
            BuildError::InvalidDimension(name) => {
                write!(f, "cell `{name}` has a non-positive or non-finite dimension")
            }
            BuildError::RowsDoNotFit {
                rows,
                row_height,
                core_height,
            } => write!(
                f,
                "{rows} rows of height {row_height} exceed core height {core_height}"
            ),
        }
    }
}

impl Error for BuildError {}

/// Incrementally assembles a [`Netlist`]; see the crate-level example.
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    core: Option<Rect>,
    row_spec: Option<(usize, f64)>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            name: "unnamed".to_owned(),
            ..Self::default()
        }
    }

    /// Sets the design name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Sets the placement (core) region.
    pub fn core_region(&mut self, core: Rect) -> &mut Self {
        self.core = Some(core);
        self
    }

    /// Requests `count` standard-cell rows of the given height, distributed
    /// evenly over the core region's vertical extent at build time.
    pub fn rows(&mut self, count: usize, height: f64) -> &mut Self {
        self.row_spec = Some((count, height));
        self
    }

    fn push_cell(&mut self, name: impl Into<String>, size: Size, kind: CellKind, fixed: Option<Point>) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cells.push(Cell {
            name: name.into(),
            size,
            kind,
            fixed_pos: fixed,
            power: 0.0,
            delay: 0.0,
            pins: Vec::new(),
        });
        id
    }

    /// Adds a movable standard cell and returns its id.
    pub fn add_cell(&mut self, name: impl Into<String>, size: Size) -> CellId {
        self.push_cell(name, size, CellKind::Standard, None)
    }

    /// Adds a movable macro block (not legalized into rows).
    pub fn add_block(&mut self, name: impl Into<String>, size: Size) -> CellId {
        self.push_cell(name, size, CellKind::Block, None)
    }

    /// Adds an immovable cell (pad or pre-placed macro) centered at `at`.
    pub fn add_fixed_cell(&mut self, name: impl Into<String>, size: Size, at: Point) -> CellId {
        self.push_cell(name, size, CellKind::Fixed, Some(at))
    }

    /// Sets a cell's switching power (heat-driven mode input).
    ///
    /// # Panics
    ///
    /// Panics if `cell` was not created by this builder.
    pub fn set_power(&mut self, cell: CellId, power: f64) -> &mut Self {
        self.cells[cell.index()].power = power;
        self
    }

    /// Sets a cell's intrinsic delay in nanoseconds (timing input).
    ///
    /// # Panics
    ///
    /// Panics if `cell` was not created by this builder.
    pub fn set_delay(&mut self, cell: CellId, delay: f64) -> &mut Self {
        self.cells[cell.index()].delay = delay;
        self
    }

    /// Adds a net connecting the given cells with center pins (zero offset)
    /// and unit weight.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        pins: impl IntoIterator<Item = (CellId, PinDirection)>,
    ) -> NetId {
        self.add_weighted_net(
            name,
            1.0,
            pins.into_iter().map(|(c, d)| (c, Vector::ZERO, d)),
        )
    }

    /// Adds a net with an explicit static weight and per-pin offsets from
    /// the cell centers.
    pub fn add_weighted_net(
        &mut self,
        name: impl Into<String>,
        weight: f64,
        pins: impl IntoIterator<Item = (CellId, Vector, PinDirection)>,
    ) -> NetId {
        let net_id = NetId::from_index(self.nets.len());
        let mut pin_ids = Vec::new();
        for (cell, offset, direction) in pins {
            let pin_id = PinId::from_index(self.pins.len());
            self.pins.push(Pin {
                cell,
                net: net_id,
                offset,
                direction,
            });
            self.cells[cell.index()].pins.push(pin_id);
            pin_ids.push(pin_id);
        }
        self.nets.push(Net {
            name: name.into(),
            weight,
            pins: pin_ids,
        });
        net_id
    }

    /// Number of cells added so far.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Appends another pin to an existing net (used by generators to wire
    /// up otherwise unconnected cells without changing the net count).
    ///
    /// # Panics
    ///
    /// Panics if `net` or `cell` was not created by this builder.
    pub fn add_pin_to_net(&mut self, net: NetId, cell: CellId, direction: PinDirection) -> PinId {
        let pin_id = PinId::from_index(self.pins.len());
        self.pins.push(Pin {
            cell,
            net,
            offset: Vector::ZERO,
            direction,
        });
        self.cells[cell.index()].pins.push(pin_id);
        self.nets[net.index()].pins.push(pin_id);
        pin_id
    }

    /// Number of pins currently on a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not created by this builder.
    #[must_use]
    pub fn net_degree(&self, net: NetId) -> usize {
        self.nets[net.index()].pins.len()
    }

    /// Whether a cell has at least one pin.
    ///
    /// # Panics
    ///
    /// Panics if `cell` was not created by this builder.
    #[must_use]
    pub fn is_connected(&self, cell: CellId) -> bool {
        !self.cells[cell.index()].pins.is_empty()
    }

    /// Validates and produces the immutable netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when no core region was set, a net has
    /// fewer than two pins, any name is empty, a cell dimension is invalid,
    /// or the requested rows do not fit the core region.
    pub fn build(&mut self) -> Result<Netlist, BuildError> {
        let core = self.core.ok_or(BuildError::MissingCoreRegion)?;
        if self.name.is_empty() {
            return Err(BuildError::EmptyName);
        }
        for cell in &self.cells {
            if cell.name.is_empty() {
                return Err(BuildError::EmptyName);
            }
            let s = cell.size;
            if !(s.width.is_finite() && s.height.is_finite() && s.width > 0.0 && s.height > 0.0) {
                return Err(BuildError::InvalidDimension(cell.name.clone()));
            }
        }
        for net in &self.nets {
            if net.name.is_empty() {
                return Err(BuildError::EmptyName);
            }
            if net.pins.len() < 2 {
                return Err(BuildError::DegenerateNet(net.name.clone()));
            }
        }
        let rows = match self.row_spec {
            None => Vec::new(),
            Some((count, height)) => {
                let core_height = core.height();
                if count as f64 * height > core_height + 1e-9 {
                    return Err(BuildError::RowsDoNotFit {
                        rows: count,
                        row_height: height,
                        core_height,
                    });
                }
                let pitch = if count > 0 { core_height / count as f64 } else { 0.0 };
                (0..count)
                    .map(|i| Row {
                        y: core.y_lo + i as f64 * pitch + (pitch - height) * 0.5,
                        height,
                        x_lo: core.x_lo,
                        x_hi: core.x_hi,
                    })
                    .collect()
            }
        };
        let num_movable = self.cells.iter().filter(|c| c.is_movable()).count();
        Ok(Netlist {
            name: std::mem::take(&mut self.name),
            cells: std::mem::take(&mut self.cells),
            nets: std::mem::take(&mut self.nets),
            pins: std::mem::take(&mut self.pins),
            rows,
            core,
            num_movable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_core_region_is_an_error() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", Size::new(1.0, 1.0));
        let c = b.add_cell("c", Size::new(1.0, 1.0));
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        assert_eq!(b.build().unwrap_err(), BuildError::MissingCoreRegion);
    }

    #[test]
    fn degenerate_net_is_an_error() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell("a", Size::new(1.0, 1.0));
        b.add_net("lonely", [(a, PinDirection::Output)]);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DegenerateNet("lonely".to_owned())
        );
    }

    #[test]
    fn invalid_dimension_is_an_error() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell("bad", Size::new(0.0, 1.0));
        let c = b.add_cell("ok", Size::new(1.0, 1.0));
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::InvalidDimension("bad".to_owned())
        );
    }

    #[test]
    fn rows_must_fit() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        b.rows(3, 5.0);
        let a = b.add_cell("a", Size::new(1.0, 1.0));
        let c = b.add_cell("c", Size::new(1.0, 1.0));
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        assert!(matches!(b.build().unwrap_err(), BuildError::RowsDoNotFit { .. }));
    }

    #[test]
    fn rows_are_evenly_distributed_inside_core() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 40.0));
        b.rows(4, 8.0);
        let a = b.add_cell("a", Size::new(1.0, 8.0));
        let c = b.add_cell("c", Size::new(1.0, 8.0));
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        let nl = b.build().unwrap();
        assert_eq!(nl.rows().len(), 4);
        for (i, row) in nl.rows().iter().enumerate() {
            assert!((row.y - (i as f64 * 10.0 + 1.0)).abs() < 1e-12);
            assert!(nl.core_region().contains_rect(&row.rect()));
        }
    }

    #[test]
    fn weighted_net_and_offsets_are_preserved() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell("a", Size::new(2.0, 2.0));
        let c = b.add_cell("c", Size::new(2.0, 2.0));
        let n = b.add_weighted_net(
            "w",
            2.5,
            [
                (a, Vector::new(1.0, 0.0), PinDirection::Output),
                (c, Vector::new(-1.0, 0.0), PinDirection::Input),
            ],
        );
        let nl = b.build().unwrap();
        assert_eq!(nl.net(n).weight(), 2.5);
        let pin0 = nl.net(n).pins()[0];
        assert_eq!(nl.pin(pin0).offset(), Vector::new(1.0, 0.0));
    }

    #[test]
    fn power_and_delay_attributes() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell("a", Size::new(1.0, 1.0));
        let c = b.add_cell("c", Size::new(1.0, 1.0));
        b.set_power(a, 3.0).set_delay(a, 0.2);
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        let nl = b.build().unwrap();
        assert_eq!(nl.cell(a).power(), 3.0);
        assert_eq!(nl.cell(a).delay(), 0.2);
        assert_eq!(nl.cell(c).power(), 0.0);
    }

    #[test]
    fn blocks_and_fixed_cells_have_expected_kinds() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        let blk = b.add_block("blk", Size::new(4.0, 4.0));
        let pad = b.add_fixed_cell("pad", Size::new(1.0, 1.0), Point::new(0.0, 0.0));
        b.add_net("n", [(blk, PinDirection::Output), (pad, PinDirection::Input)]);
        let nl = b.build().unwrap();
        assert_eq!(nl.cell(blk).kind(), CellKind::Block);
        assert!(nl.cell(blk).is_movable());
        assert_eq!(nl.cell(pad).kind(), CellKind::Fixed);
        assert!(!nl.cell(pad).is_movable());
        assert_eq!(nl.num_movable(), 1);
    }
}
