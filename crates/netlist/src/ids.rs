//! Typed indices into the netlist arenas.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index. Intended for code that walks
            /// parallel arrays indexed by this id type; passing an index not
            /// obtained from the owning [`crate::Netlist`] yields panics or
            /// nonsense on later lookups.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32"))
            }

            /// The raw index, usable with parallel arrays.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a cell (movable cell, macro block, or fixed pad).
    CellId,
    "c"
);
define_id!(
    /// Identifier of a net.
    NetId,
    "n"
);
define_id!(
    /// Identifier of a pin (one cell–net incidence).
    PinId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let c = CellId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(format!("{c}"), "c7");
        assert_eq!(format!("{c:?}"), "c7");
        assert_eq!(format!("{}", NetId::from_index(3)), "n3");
        assert_eq!(format!("{}", PinId::from_index(0)), "p0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CellId::from_index(1));
        set.insert(CellId::from_index(1));
        set.insert(CellId::from_index(2));
        assert_eq!(set.len(), 2);
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }

    #[test]
    #[should_panic(expected = "id index exceeds u32")]
    fn oversized_index_panics() {
        let _ = CellId::from_index(usize::MAX);
    }
}
