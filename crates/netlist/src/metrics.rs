//! Wire-length and overlap metrics.
//!
//! The paper measures quality as the sum over all nets of the half
//! perimeter of the pins' enclosing rectangle ([`hpwl`], section 6) and
//! optimizes the quadratic clique objective ([`quadratic_wire_length`],
//! section 2.1). Overlap metrics quantify how far a global placement is
//! from legality.

use crate::ids::NetId;
use crate::model::Netlist;
use crate::placement::Placement;
use kraftwerk_geom::BoundingBox;

/// Bounding box of a net's pins under a placement.
#[must_use]
pub fn net_bounding_box(netlist: &Netlist, placement: &Placement, net: NetId) -> BoundingBox {
    netlist
        .net(net)
        .pins()
        .iter()
        .map(|&p| netlist.pin_position(p, placement))
        .collect()
}

/// Half-perimeter wire length of a single net.
#[must_use]
pub fn net_hpwl(netlist: &Netlist, placement: &Placement, net: NetId) -> f64 {
    net_bounding_box(netlist, placement, net).half_perimeter()
}

/// Total half-perimeter wire length over all nets — the paper's reported
/// quality metric (unweighted).
#[must_use]
pub fn hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist.net_ids().map(|n| net_hpwl(netlist, placement, n)).sum()
}

/// Total half-perimeter wire length with each net scaled by its static
/// weight; used by timing-driven flows to report the weighted objective.
#[must_use]
pub fn weighted_hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist
        .nets()
        .map(|(id, net)| net.weight() * net_hpwl(netlist, placement, id))
        .sum()
}

/// The quadratic clique objective of section 2.1: for each net of degree
/// `k`, the sum over all `k(k-1)/2` cell pairs of the squared Euclidean
/// pin distance, each weighted `w_net / k`.
#[must_use]
pub fn quadratic_wire_length(netlist: &Netlist, placement: &Placement) -> f64 {
    let mut total = 0.0;
    for (id, net) in netlist.nets() {
        let k = net.degree();
        if k < 2 {
            continue;
        }
        let w = net.weight() / k as f64;
        let pts: Vec<_> = net
            .pins()
            .iter()
            .map(|&p| netlist.pin_position(p, placement))
            .collect();
        let mut acc = 0.0;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                acc += pts[i].distance_sq(pts[j]);
            }
        }
        total += w * acc;
        let _ = id;
    }
    total
}

/// Exact total pairwise overlap area among movable cells, computed with a
/// sweep over x. `O(n log n + k)` where `k` is the number of overlapping
/// pairs — fine for legality checking, not intended for inner loops.
#[must_use]
pub fn total_overlap_area(netlist: &Netlist, placement: &Placement) -> f64 {
    let mut rects: Vec<_> = netlist
        .movable_cells()
        .map(|(id, cell)| placement.cell_rect(id, cell.size()))
        .collect();
    rects.sort_by(|a, b| a.x_lo.total_cmp(&b.x_lo));
    let mut total = 0.0;
    let mut active: Vec<usize> = Vec::new();
    for i in 0..rects.len() {
        let r = rects[i];
        active.retain(|&j| rects[j].x_hi > r.x_lo);
        for &j in &active {
            total += rects[j].overlap_area(&r);
        }
        active.push(i);
    }
    total
}

/// Overlap area normalized by total movable cell area; 0.0 means fully
/// legal (ignoring row alignment), values near 1.0 mean cells are piled on
/// top of each other.
#[must_use]
pub fn overlap_ratio(netlist: &Netlist, placement: &Placement) -> f64 {
    let area = netlist.total_movable_area();
    if area <= 0.0 {
        0.0
    } else {
        total_overlap_area(netlist, placement) / area
    }
}

/// Fraction of movable-cell area lying outside the core region.
#[must_use]
pub fn out_of_core_ratio(netlist: &Netlist, placement: &Placement) -> f64 {
    let core = netlist.core_region();
    let mut outside = 0.0;
    let mut total = 0.0;
    for (id, cell) in netlist.movable_cells() {
        let r = placement.cell_rect(id, cell.size());
        total += r.area();
        outside += r.area() - r.overlap_area(&core);
    }
    if total <= 0.0 {
        0.0
    } else {
        outside / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::model::PinDirection;
    use kraftwerk_geom::{Point, Rect, Size, Vector};

    fn two_cell_netlist() -> (Netlist, Placement) {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
        let a = b.add_cell("a", Size::new(4.0, 4.0));
        let c = b.add_cell("c", Size::new(4.0, 4.0));
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        let nl = b.build().unwrap();
        let mut p = nl.initial_placement();
        p.set_position(a, Point::new(10.0, 10.0));
        p.set_position(c, Point::new(13.0, 14.0));
        (nl, p)
    }

    #[test]
    fn hpwl_of_two_pin_net_is_manhattan_distance() {
        let (nl, p) = two_cell_netlist();
        assert!((hpwl(&nl, &p) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_hpwl_scales_with_net_weight() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
        let a = b.add_cell("a", Size::new(4.0, 4.0));
        let c = b.add_cell("c", Size::new(4.0, 4.0));
        b.add_weighted_net(
            "n",
            3.0,
            [
                (a, Vector::ZERO, PinDirection::Output),
                (c, Vector::ZERO, PinDirection::Input),
            ],
        );
        let nl = b.build().unwrap();
        let mut p = nl.initial_placement();
        p.set_position(a, Point::new(0.0, 0.0));
        p.set_position(c, Point::new(1.0, 1.0));
        assert!((hpwl(&nl, &p) - 2.0).abs() < 1e-12);
        assert!((weighted_hpwl(&nl, &p) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_length_matches_hand_computation() {
        let (nl, p) = two_cell_netlist();
        // one net, k = 2, weight 1/2, distance^2 = 9 + 16 = 25
        assert!((quadratic_wire_length(&nl, &p) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn pin_offsets_affect_hpwl() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
        let a = b.add_cell("a", Size::new(4.0, 4.0));
        let c = b.add_cell("c", Size::new(4.0, 4.0));
        b.add_weighted_net(
            "n",
            1.0,
            [
                (a, Vector::new(2.0, 0.0), PinDirection::Output),
                (c, Vector::new(-2.0, 0.0), PinDirection::Input),
            ],
        );
        let nl = b.build().unwrap();
        let mut p = nl.initial_placement();
        p.set_position(a, Point::new(0.0, 0.0));
        p.set_position(c, Point::new(10.0, 0.0));
        // pins at x = 2 and x = 8
        assert!((hpwl(&nl, &p) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_identical_positions_is_cell_area() {
        let (nl, mut p) = two_cell_netlist();
        p.set_position(crate::CellId::from_index(1), Point::new(10.0, 10.0));
        assert!((total_overlap_area(&nl, &p) - 16.0).abs() < 1e-12);
        assert!((overlap_ratio(&nl, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_disjoint_cells_is_zero() {
        let (nl, p) = two_cell_netlist();
        // centers 10,10 and 13,14: 4x4 cells overlap in x (8..12 vs 11..15)
        // and y? y: 8..12 vs 12..16 touch only -> zero area.
        assert_eq!(total_overlap_area(&nl, &p), 0.0);
    }

    #[test]
    fn out_of_core_detects_escapees() {
        let (nl, mut p) = two_cell_netlist();
        p.set_position(crate::CellId::from_index(0), Point::new(-10.0, 50.0));
        // cell a fully outside, cell c fully inside -> 50% of area outside
        assert!((out_of_core_ratio(&nl, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_sweep_matches_brute_force_on_cluster() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 50.0, 50.0));
        let n = 40;
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_cell(format!("c{i}"), Size::new(3.0, 4.0)))
            .collect();
        for i in 0..n - 1 {
            b.add_net(
                format!("n{i}"),
                [(ids[i], PinDirection::Output), (ids[i + 1], PinDirection::Input)],
            );
        }
        let nl = b.build().unwrap();
        let mut p = nl.initial_placement();
        for &id in &ids {
            p.set_position(id, Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)));
        }
        let mut brute = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let ri = p.cell_rect(ids[i], nl.cell(ids[i]).size());
                let rj = p.cell_rect(ids[j], nl.cell(ids[j]).size());
                brute += ri.overlap_area(&rj);
            }
        }
        assert!((total_overlap_area(&nl, &p) - brute).abs() < 1e-9);
    }
}
