//! Boundary validation of a constructed [`Netlist`].
//!
//! [`NetlistBuilder`](crate::NetlistBuilder) rejects structurally broken
//! input at construction time, but a [`Netlist`] can also arrive through
//! cloning hooks such as [`Netlist::with_sizes`] or be fed numeric garbage
//! (NaN pin offsets, fixed cells far outside the die) that the builder does
//! not police. [`Netlist::validate`] is the single boundary check the CLI
//! and the placer run before any numerics touch the data: it never panics
//! and reports *all* problems it finds, not just the first.

use crate::model::{CellKind, Netlist};
use kraftwerk_geom::Point;
use std::error::Error;
use std::fmt;

/// Hard cap on a single net's pin count.
///
/// The quadratic clique model creates `k-1` matrix entries per pin of a
/// `k`-pin net; a pathological clique net (the classic "reset fanout"
/// degenerate case) turns the sparse system dense and the run
/// intractable. Nets above this degree are rejected at the boundary.
pub const MAX_NET_DEGREE: usize = 65_536;

/// One problem found by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValidationIssue {
    /// The core region has zero (or negative) width or height.
    ZeroAreaCore {
        /// Core width as given.
        width: f64,
        /// Core height as given.
        height: f64,
    },
    /// A core coordinate is NaN or infinite.
    NonFiniteCore,
    /// A cell's width or height is NaN, infinite, or negative.
    BadCellSize {
        /// Offending cell name.
        cell: String,
        /// Cell width as given.
        width: f64,
        /// Cell height as given.
        height: f64,
    },
    /// A fixed cell sits outside the core region (beyond one cell extent
    /// of slack for boundary pads) or has a non-finite position.
    FixedCellOutsideCore {
        /// Offending cell name.
        cell: String,
        /// The fixed position as given.
        position: Point,
    },
    /// A pin offset is NaN or infinite.
    NonFinitePinOffset {
        /// Cell the pin belongs to.
        cell: String,
        /// Net the pin belongs to.
        net: String,
    },
    /// A net has no pins at all.
    EmptyNet {
        /// Offending net name.
        net: String,
    },
    /// A net has a single pin and therefore no placement meaning.
    DegenerateNet {
        /// Offending net name.
        net: String,
    },
    /// A net's pin count exceeds [`MAX_NET_DEGREE`].
    NetDegreeOverflow {
        /// Offending net name.
        net: String,
        /// The net's actual degree.
        degree: usize,
    },
    /// A net weight is NaN, infinite, or negative.
    BadNetWeight {
        /// Offending net name.
        net: String,
        /// The weight as given.
        weight: f64,
    },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::ZeroAreaCore { width, height } => {
                write!(f, "core region has zero area ({width} x {height})")
            }
            ValidationIssue::NonFiniteCore => write!(f, "core region has non-finite coordinates"),
            ValidationIssue::BadCellSize { cell, width, height } => {
                write!(f, "cell `{cell}` has invalid size {width} x {height}")
            }
            ValidationIssue::FixedCellOutsideCore { cell, position } => {
                write!(
                    f,
                    "fixed cell `{cell}` at ({}, {}) lies outside the core region",
                    position.x, position.y
                )
            }
            ValidationIssue::NonFinitePinOffset { cell, net } => {
                write!(f, "non-finite pin offset on cell `{cell}` (net `{net}`)")
            }
            ValidationIssue::EmptyNet { net } => write!(f, "net `{net}` has no pins"),
            ValidationIssue::DegenerateNet { net } => {
                write!(f, "net `{net}` has a single pin")
            }
            ValidationIssue::NetDegreeOverflow { net, degree } => {
                write!(
                    f,
                    "net `{net}` has {degree} pins (limit {MAX_NET_DEGREE})"
                )
            }
            ValidationIssue::BadNetWeight { net, weight } => {
                write!(f, "net `{net}` has invalid weight {weight}")
            }
        }
    }
}

/// All problems found by one [`Netlist::validate`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Every issue found, in deterministic (cell/net id) order.
    pub issues: Vec<ValidationIssue>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 3;
        write!(f, "netlist failed validation with {} issue(s): ", self.issues.len())?;
        for (i, issue) in self.issues.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{issue}")?;
        }
        if self.issues.len() > SHOWN {
            write!(f, "; and {} more", self.issues.len() - SHOWN)?;
        }
        Ok(())
    }
}

impl Error for ValidationError {}

impl Netlist {
    /// Checks the netlist for numeric and structural problems the builder
    /// does not (or cannot) catch: a degenerate core region, non-finite
    /// pin offsets, fixed cells outside the core, empty or single-pin
    /// nets, and pathological clique nets above [`MAX_NET_DEGREE`].
    ///
    /// This is the boundary gate the CLI and `Placer::try_place` run
    /// before any numerics touch the data. It never panics.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] listing every issue found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let mut issues = Vec::new();
        let core = self.core_region();
        let core_finite = core.x_lo.is_finite()
            && core.y_lo.is_finite()
            && core.x_hi.is_finite()
            && core.y_hi.is_finite();
        if !core_finite {
            issues.push(ValidationIssue::NonFiniteCore);
        } else if core.width() <= 0.0 || core.height() <= 0.0 {
            issues.push(ValidationIssue::ZeroAreaCore {
                width: core.width(),
                height: core.height(),
            });
        }
        for (_, cell) in self.cells() {
            let s = cell.size();
            if !s.width.is_finite() || !s.height.is_finite() || s.width < 0.0 || s.height < 0.0 {
                issues.push(ValidationIssue::BadCellSize {
                    cell: cell.name().to_owned(),
                    width: s.width,
                    height: s.height,
                });
            }
            if cell.kind() == CellKind::Fixed {
                if let Some(p) = cell.fixed_position() {
                    // Boundary pads legitimately overhang the core edge, so
                    // allow one full cell extent of slack before flagging.
                    let slack = s.width.max(s.height).max(0.0);
                    let ok = p.x.is_finite()
                        && p.y.is_finite()
                        && core_finite
                        && core.inflate(slack).contains(p);
                    if !ok {
                        issues.push(ValidationIssue::FixedCellOutsideCore {
                            cell: cell.name().to_owned(),
                            position: p,
                        });
                    }
                }
            }
        }
        for (_, net) in self.nets() {
            match net.degree() {
                0 => issues.push(ValidationIssue::EmptyNet { net: net.name().to_owned() }),
                1 => issues.push(ValidationIssue::DegenerateNet { net: net.name().to_owned() }),
                d if d > MAX_NET_DEGREE => issues.push(ValidationIssue::NetDegreeOverflow {
                    net: net.name().to_owned(),
                    degree: d,
                }),
                _ => {}
            }
            if !net.weight().is_finite() || net.weight() < 0.0 {
                issues.push(ValidationIssue::BadNetWeight {
                    net: net.name().to_owned(),
                    weight: net.weight(),
                });
            }
            for &pin_id in net.pins() {
                let pin = self.pin(pin_id);
                if !pin.offset().x.is_finite() || !pin.offset().y.is_finite() {
                    issues.push(ValidationIssue::NonFinitePinOffset {
                        cell: self.cell(pin.cell()).name().to_owned(),
                        net: net.name().to_owned(),
                    });
                }
            }
        }
        if issues.is_empty() {
            Ok(())
        } else {
            Err(ValidationError { issues })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::model::PinDirection;
    use crate::synth::{generate, SynthConfig};
    use kraftwerk_geom::{Rect, Size, Vector};

    fn base() -> NetlistBuilder {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
        b
    }

    #[test]
    fn clean_netlist_validates() {
        let nl = generate(&SynthConfig::with_size("v", 50, 70, 4));
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn nan_pin_offset_is_flagged() {
        let mut b = base();
        let a = b.add_cell("a", Size::new(4.0, 8.0));
        let c = b.add_cell("c", Size::new(4.0, 8.0));
        b.add_weighted_net(
            "n",
            1.0,
            [
                (a, Vector::new(f64::NAN, 0.0), PinDirection::Output),
                (c, Vector::ZERO, PinDirection::Input),
            ],
        );
        let err = b.build().unwrap().validate().unwrap_err();
        assert!(err
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::NonFinitePinOffset { .. })));
    }

    #[test]
    fn zero_area_core_is_flagged_after_resize() {
        // The builder rejects a degenerate core, but `with_sizes` shows a
        // netlist can mutate after construction; emulate a degenerate core
        // by building with a thin sliver and checking the width==0 path via
        // direct validation of a zero-height clone is unavailable, so use
        // NaN sizes instead (also a post-build mutation).
        let mut b = base();
        let a = b.add_cell("a", Size::new(4.0, 8.0));
        let c = b.add_cell("c", Size::new(4.0, 8.0));
        b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        let nl = b.build().unwrap();
        // Bypass Size::new — its debug_assert would fire before validation
        // gets a chance to flag the bad size.
        let bad = nl.with_sizes(|_, _| Size { width: f64::NAN, height: 8.0 });
        let err = bad.validate().unwrap_err();
        assert!(err.issues.iter().any(|i| matches!(i, ValidationIssue::BadCellSize { .. })));
    }

    #[test]
    fn far_outside_fixed_cell_is_flagged_but_boundary_pad_is_not() {
        let mut b = base();
        let a = b.add_cell("a", Size::new(4.0, 8.0));
        let pad = b.add_fixed_cell("pad", Size::new(2.0, 2.0), kraftwerk_geom::Point::new(0.0, 50.0));
        let far = b.add_fixed_cell("far", Size::new(2.0, 2.0), kraftwerk_geom::Point::new(-500.0, 50.0));
        b.add_net("n1", [(a, PinDirection::Output), (pad, PinDirection::Input)]);
        b.add_net("n2", [(a, PinDirection::Output), (far, PinDirection::Input)]);
        let err = b.build().unwrap().validate().unwrap_err();
        let outside: Vec<_> = err
            .issues
            .iter()
            .filter_map(|i| match i {
                ValidationIssue::FixedCellOutsideCore { cell, .. } => Some(cell.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(outside, vec!["far"]);
    }

    #[test]
    fn display_caps_issue_list() {
        let err = ValidationError {
            issues: (0..5)
                .map(|i| ValidationIssue::EmptyNet { net: format!("n{i}") })
                .collect(),
        };
        let text = err.to_string();
        assert!(text.contains("5 issue(s)"));
        assert!(text.contains("and 2 more"));
    }
}
