//! Rectilinear Steiner tree wire-length estimation.
//!
//! HPWL (the paper's metric) underestimates multi-pin nets and the
//! spanning tree overestimates them; the rectilinear Steiner minimal tree
//! (RSMT) is the routing-faithful middle ground. This module provides:
//!
//! * [`mst_length`] — rectilinear minimum spanning tree (Prim);
//! * [`steiner_length`] — iterated 1-Steiner heuristic over the Hanan
//!   grid (exact for ≤3 pins, within a few percent of optimal for the
//!   net sizes placement benchmarks contain);
//! * [`steiner_wire_length`] — total over a placement (nets above a
//!   degree cap fall back to the spanning tree).
//!
//! ```
//! use kraftwerk_netlist::steiner::{mst_length, steiner_length};
//! use kraftwerk_geom::Point;
//!
//! // A cross: the Steiner point at the center saves a third.
//! let pins = [
//!     Point::new(0.0, 1.0),
//!     Point::new(2.0, 1.0),
//!     Point::new(1.0, 0.0),
//!     Point::new(1.0, 2.0),
//! ];
//! assert_eq!(mst_length(&pins), 6.0);
//! assert_eq!(steiner_length(&pins), 4.0);
//! ```

use crate::model::Netlist;
use crate::placement::Placement;
use kraftwerk_geom::Point;

fn l1(a: Point, b: Point) -> f64 {
    a.manhattan(b)
}

/// Length of the rectilinear minimum spanning tree over the points
/// (Prim's algorithm, `O(n²)`). Zero for fewer than two points.
#[must_use]
pub fn mst_length(points: &[Point]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for i in 1..n {
        best[i] = l1(points[0], points[i]);
    }
    let mut total = 0.0;
    for _ in 1..n {
        let (next, &d) = best
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("unvisited point exists");
        total += d;
        in_tree[next] = true;
        for i in 0..n {
            if !in_tree[i] {
                let d = l1(points[next], points[i]);
                if d < best[i] {
                    best[i] = d;
                }
            }
        }
    }
    total
}

/// Rectilinear Steiner tree length by the iterated 1-Steiner heuristic:
/// repeatedly add the Hanan grid point that shrinks the spanning tree the
/// most, until no candidate helps. Exact for up to three pins; a few
/// percent above optimal beyond.
///
/// Degenerate inputs (fewer than two points) return 0.
#[must_use]
pub fn steiner_length(points: &[Point]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    if points.len() == 2 {
        return l1(points[0], points[1]);
    }
    let mut working: Vec<Point> = points.to_vec();
    let mut current = mst_length(&working);
    // Hanan coordinates come from the original pins only — adding Steiner
    // points cannot create useful new Hanan coordinates for this
    // heuristic tier.
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    ys.sort_by(f64::total_cmp);
    ys.dedup();

    // Iterate until no Hanan point helps (bounded by pin count; each
    // accepted Steiner point strictly shrinks the tree).
    for _round in 0..points.len() {
        let mut best_gain = 1e-12;
        let mut best_point = None;
        for &x in &xs {
            for &y in &ys {
                let candidate = Point::new(x, y);
                if working.iter().any(|p| p.manhattan(candidate) < 1e-12) {
                    continue;
                }
                working.push(candidate);
                let with = mst_length(&working);
                working.pop();
                let gain = current - with;
                if gain > best_gain {
                    best_gain = gain;
                    best_point = Some(candidate);
                }
            }
        }
        match best_point {
            Some(p) => {
                working.push(p);
                current -= best_gain;
            }
            None => break,
        }
    }
    current
}

/// Total Steiner wire length of a placement. Nets with more pins than
/// `degree_cap` use the spanning tree (the Hanan sweep is quadratic in
/// pins); `8` is a good cap — larger nets are rare and tree-length
/// differences wash out in the total.
#[must_use]
pub fn steiner_wire_length(netlist: &Netlist, placement: &Placement, degree_cap: usize) -> f64 {
    let mut total = 0.0;
    for (_, net) in netlist.nets() {
        let pts: Vec<Point> = net
            .pins()
            .iter()
            .map(|&p| netlist.pin_position(p, placement))
            .collect();
        total += if pts.len() <= degree_cap {
            steiner_length(&pts)
        } else {
            mst_length(&pts)
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn two_pins_are_manhattan_distance() {
        let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        assert_eq!(mst_length(&pts), 7.0);
        assert_eq!(steiner_length(&pts), 7.0);
    }

    #[test]
    fn empty_and_singleton_are_zero() {
        assert_eq!(mst_length(&[]), 0.0);
        assert_eq!(steiner_length(&[]), 0.0);
        assert_eq!(steiner_length(&[Point::new(1.0, 1.0)]), 0.0);
    }

    #[test]
    fn l_shaped_three_pins_gain_a_corner() {
        // (0,0), (2,0), (2,2): MST = 2 + 2 = 4, already optimal.
        let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(2.0, 2.0)];
        assert_eq!(mst_length(&pts), 4.0);
        assert_eq!(steiner_length(&pts), 4.0);
        // (0,0), (2,0), (1,2): MST = 2 + 3 = 5; Steiner point (1,0): 2+2 = 4.
        let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 2.0)];
        assert_eq!(mst_length(&pts), 5.0);
        assert_eq!(steiner_length(&pts), 4.0);
    }

    #[test]
    fn cross_saves_a_third() {
        let pts = [
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 2.0),
        ];
        assert_eq!(mst_length(&pts), 6.0);
        assert_eq!(steiner_length(&pts), 4.0);
    }

    #[test]
    fn square_corners_have_no_rectilinear_gain() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
        ];
        assert_eq!(mst_length(&pts), 6.0);
        assert_eq!(steiner_length(&pts), 6.0);
    }

    #[test]
    fn steiner_is_bracketed_by_hpwl_and_mst() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let k = rng.gen_range(2..9);
            let pts: Vec<Point> = (0..k)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let hpwl: f64 = {
                let bb: kraftwerk_geom::BoundingBox = pts.iter().copied().collect();
                bb.half_perimeter()
            };
            let mst = mst_length(&pts);
            let steiner = steiner_length(&pts);
            assert!(hpwl <= steiner + 1e-9, "hpwl {hpwl} > steiner {steiner}");
            assert!(steiner <= mst + 1e-9, "steiner {steiner} > mst {mst}");
            // The classical bound: MST <= 1.5 * RSMT.
            assert!(mst <= 1.5 * steiner + 1e-9, "mst {mst} vs steiner {steiner}");
        }
    }

    #[test]
    fn netlist_totals_are_ordered() {
        let nl = generate(&SynthConfig::with_size("st", 150, 190, 6));
        let p = nl.initial_placement();
        let hpwl = metrics::hpwl(&nl, &p);
        let stwl = steiner_wire_length(&nl, &p, 8);
        assert!(stwl >= hpwl - 1e-6, "steiner {stwl} below hpwl {hpwl}");
        // On mostly-small nets the two agree within ~35%.
        assert!(stwl <= 1.35 * hpwl, "steiner {stwl} vs hpwl {hpwl}");
    }

    #[test]
    fn degree_cap_falls_back_to_mst() {
        let pts: Vec<Point> = (0..12)
            .map(|i| Point::new(f64::from(i % 4), f64::from(i / 4)))
            .collect();
        // With cap 0 every net uses MST; spot-check via a tiny netlist.
        let mst = mst_length(&pts);
        assert!(mst > 0.0);
    }
}
