//! Netlist statistics used for reporting and for validating that the
//! synthetic benchmark generator produces MCNC-shaped circuits.

use crate::model::{CellKind, Netlist};
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total number of cells including fixed ones.
    pub cells: usize,
    /// Movable standard cells.
    pub standard_cells: usize,
    /// Movable macro blocks.
    pub blocks: usize,
    /// Fixed cells (pads, pre-placed macros).
    pub fixed: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of pins.
    pub pins: usize,
    /// Average net degree.
    pub avg_net_degree: f64,
    /// Largest net degree.
    pub max_net_degree: usize,
    /// Histogram of net degree -> count.
    pub degree_histogram: BTreeMap<usize, usize>,
    /// Average pins per cell.
    pub avg_pins_per_cell: f64,
    /// Core utilization (movable area / core area).
    pub utilization: f64,
    /// Number of standard-cell rows.
    pub rows: usize,
}

impl NetlistStats {
    /// Gathers statistics from a netlist.
    #[must_use]
    pub fn collect(netlist: &Netlist) -> Self {
        let mut degree_histogram = BTreeMap::new();
        let mut max_net_degree = 0;
        for (_, net) in netlist.nets() {
            let d = net.degree();
            *degree_histogram.entry(d).or_insert(0) += 1;
            max_net_degree = max_net_degree.max(d);
        }
        let mut standard_cells = 0;
        let mut blocks = 0;
        let mut fixed = 0;
        for (_, cell) in netlist.cells() {
            match cell.kind() {
                CellKind::Standard => standard_cells += 1,
                CellKind::Block => blocks += 1,
                CellKind::Fixed => fixed += 1,
            }
        }
        let nets = netlist.num_nets().max(1);
        let cells = netlist.num_cells().max(1);
        Self {
            cells: netlist.num_cells(),
            standard_cells,
            blocks,
            fixed,
            nets: netlist.num_nets(),
            pins: netlist.num_pins(),
            avg_net_degree: netlist.num_pins() as f64 / nets as f64,
            max_net_degree,
            degree_histogram,
            avg_pins_per_cell: netlist.num_pins() as f64 / cells as f64,
            utilization: netlist.utilization(),
            rows: netlist.rows().len(),
        }
    }

    /// Fraction of nets with degree exactly `d`.
    #[must_use]
    pub fn degree_fraction(&self, d: usize) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            *self.degree_histogram.get(&d).unwrap_or(&0) as f64 / self.nets as f64
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells: {} ({} std, {} blocks, {} fixed)",
            self.cells, self.standard_cells, self.blocks, self.fixed
        )?;
        writeln!(f, "nets: {} (avg degree {:.2}, max {})", self.nets, self.avg_net_degree, self.max_net_degree)?;
        writeln!(f, "pins: {} ({:.2} per cell)", self.pins, self.avg_pins_per_cell)?;
        writeln!(f, "rows: {}, utilization: {:.1}%", self.rows, self.utilization * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::model::PinDirection;
    use kraftwerk_geom::{Point, Rect, Size};

    #[test]
    fn collects_expected_counts() {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = b.add_cell("a", Size::new(1.0, 1.0));
        let c = b.add_cell("c", Size::new(1.0, 1.0));
        let k = b.add_block("k", Size::new(2.0, 2.0));
        let p = b.add_fixed_cell("p", Size::new(1.0, 1.0), Point::ORIGIN);
        b.add_net("n1", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        b.add_net(
            "n2",
            [
                (a, PinDirection::Output),
                (k, PinDirection::Input),
                (p, PinDirection::Input),
            ],
        );
        let stats = NetlistStats::collect(&b.build().unwrap());
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.standard_cells, 2);
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.fixed, 1);
        assert_eq!(stats.nets, 2);
        assert_eq!(stats.pins, 5);
        assert_eq!(stats.max_net_degree, 3);
        assert!((stats.avg_net_degree - 2.5).abs() < 1e-12);
        assert!((stats.degree_fraction(2) - 0.5).abs() < 1e-12);
        assert!((stats.degree_fraction(9) - 0.0).abs() < 1e-12);
        let rendered = stats.to_string();
        assert!(rendered.contains("nets: 2"));
    }
}
