//! Plain-text netlist and placement interchange format.
//!
//! A single-file sibling of the Bookshelf suite, sufficient to round-trip
//! every netlist in this workspace:
//!
//! ```text
//! kraftwerk-netlist 1
//! name my_design
//! core 0 0 400 400
//! rows 10 16
//! cell u1 8 16 std
//! cell u2 8 16 std
//! cell pad0 4 4 fixed 0 200
//! net n1 1 u1:0:0:O u2:0:0:I
//! net n2 2.5 u2:4:0:O pad0:0:0:I
//! ```
//!
//! Placements are stored separately as `place <cell> <x> <y>` lines so a
//! netlist file can be paired with many placements.

pub mod bookshelf;

use crate::builder::{BuildError, NetlistBuilder};
use crate::ids::CellId;
use crate::model::{CellKind, Netlist, PinDirection};
use crate::placement::Placement;
use kraftwerk_geom::{Point, Rect, Size, Vector};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number where the problem was detected.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

fn parse_f64(line: usize, tok: &str, what: &str) -> Result<f64, ParseError> {
    tok.parse()
        .map_err(|_| ParseError::new(line, format!("invalid {what} `{tok}`")))
}

/// Like [`parse_f64`] but additionally rejects NaN and infinities, which
/// the text syntax technically parses but no downstream numeric can take.
fn parse_finite_f64(line: usize, tok: &str, what: &str) -> Result<f64, ParseError> {
    let v = parse_f64(line, tok, what)?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ParseError::new(line, format!("non-finite {what} `{tok}`")))
    }
}

/// Serializes a netlist to the text format.
#[must_use]
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kraftwerk-netlist 1");
    let _ = writeln!(out, "name {}", netlist.name());
    let core = netlist.core_region();
    let _ = writeln!(out, "core {} {} {} {}", core.x_lo, core.y_lo, core.x_hi, core.y_hi);
    if let Some(row) = netlist.rows().first() {
        let _ = writeln!(out, "rows {} {}", netlist.rows().len(), row.height);
    }
    for (_, cell) in netlist.cells() {
        let _ = write!(out, "cell {} {} {} ", cell.name(), cell.size().width, cell.size().height);
        match cell.kind() {
            CellKind::Standard => out.push_str("std"),
            CellKind::Block => out.push_str("block"),
            CellKind::Fixed => {
                let p = cell.fixed_position().expect("fixed cell has a position");
                let _ = write!(out, "fixed {} {}", p.x, p.y);
            }
        }
        if cell.power() != 0.0 {
            let _ = write!(out, " power {}", cell.power());
        }
        if cell.delay() != 0.0 {
            let _ = write!(out, " delay {}", cell.delay());
        }
        out.push('\n');
    }
    for (_, net) in netlist.nets() {
        let _ = write!(out, "net {} {}", net.name(), net.weight());
        for &pin_id in net.pins() {
            let pin = netlist.pin(pin_id);
            let cell = netlist.cell(pin.cell());
            let dir = match pin.direction() {
                PinDirection::Input => 'I',
                PinDirection::Output => 'O',
            };
            let _ = write!(out, " {}:{}:{}:{}", cell.name(), pin.offset().x, pin.offset().y, dir);
        }
        out.push('\n');
    }
    out
}

/// Parses a netlist from the text format.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input and wraps [`BuildError`]
/// diagnostics (reported on line 0) when the parsed netlist fails
/// validation.
pub fn read_netlist(text: &str) -> Result<Netlist, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (first_no, first) = lines
        .next()
        .ok_or_else(|| ParseError::new(0, "empty input"))?;
    if first != "kraftwerk-netlist 1" {
        return Err(ParseError::new(first_no, "missing `kraftwerk-netlist 1` header"));
    }
    let mut builder = NetlistBuilder::new();
    let mut by_name: HashMap<String, CellId> = HashMap::new();
    let mut net_names: HashSet<String> = HashSet::new();
    for (no, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let keyword = toks.next().expect("non-empty line has a first token");
        let toks: Vec<&str> = toks.collect();
        match keyword {
            "name" => {
                let name = toks.first().ok_or_else(|| ParseError::new(no, "name requires a value"))?;
                builder.name(*name);
            }
            "core" => {
                if toks.len() != 4 {
                    return Err(ParseError::new(no, "core requires 4 coordinates"));
                }
                let v: Vec<f64> = toks
                    .iter()
                    .map(|t| parse_finite_f64(no, t, "coordinate"))
                    .collect::<Result<_, _>>()?;
                if v[2] <= v[0] || v[3] <= v[1] {
                    return Err(ParseError::new(no, "core region has zero or negative area"));
                }
                builder.core_region(Rect::new(v[0], v[1], v[2], v[3]));
            }
            "rows" => {
                if toks.len() != 2 {
                    return Err(ParseError::new(no, "rows requires count and height"));
                }
                let count: usize = toks[0]
                    .parse()
                    .map_err(|_| ParseError::new(no, format!("invalid row count `{}`", toks[0])))?;
                let height = parse_finite_f64(no, toks[1], "row height")?;
                if height <= 0.0 {
                    return Err(ParseError::new(no, format!("row height must be positive, got `{height}`")));
                }
                builder.rows(count, height);
            }
            "cell" => {
                if toks.len() < 4 {
                    return Err(ParseError::new(no, "cell requires name, width, height, kind"));
                }
                let name = toks[0];
                let w = parse_finite_f64(no, toks[1], "width")?;
                let h = parse_finite_f64(no, toks[2], "height")?;
                if w <= 0.0 || h <= 0.0 {
                    return Err(ParseError::new(
                        no,
                        format!("cell `{name}` has non-positive size {w} x {h}"),
                    ));
                }
                let size = Size::new(w, h);
                let mut rest;
                let id = match toks[3] {
                    "std" => {
                        rest = 4;
                        builder.add_cell(name, size)
                    }
                    "block" => {
                        rest = 4;
                        builder.add_block(name, size)
                    }
                    "fixed" => {
                        if toks.len() < 6 {
                            return Err(ParseError::new(no, "fixed cell requires x and y"));
                        }
                        let x = parse_finite_f64(no, toks[4], "x")?;
                        let y = parse_finite_f64(no, toks[5], "y")?;
                        rest = 6;
                        builder.add_fixed_cell(name, size, Point::new(x, y))
                    }
                    other => {
                        return Err(ParseError::new(no, format!("unknown cell kind `{other}`")));
                    }
                };
                while rest + 1 < toks.len() + 1 && rest < toks.len() {
                    match toks[rest] {
                        "power" => {
                            let p = toks
                                .get(rest + 1)
                                .ok_or_else(|| ParseError::new(no, "power requires a value"))?;
                            builder.set_power(id, parse_finite_f64(no, p, "power")?);
                            rest += 2;
                        }
                        "delay" => {
                            let d = toks
                                .get(rest + 1)
                                .ok_or_else(|| ParseError::new(no, "delay requires a value"))?;
                            builder.set_delay(id, parse_finite_f64(no, d, "delay")?);
                            rest += 2;
                        }
                        other => {
                            return Err(ParseError::new(no, format!("unknown cell attribute `{other}`")));
                        }
                    }
                }
                if by_name.insert(name.to_owned(), id).is_some() {
                    return Err(ParseError::new(no, format!("duplicate cell name `{name}`")));
                }
            }
            "net" => {
                if toks.len() < 4 {
                    return Err(ParseError::new(no, "net requires name, weight, and >= 2 pins"));
                }
                let name = toks[0];
                if !net_names.insert(name.to_owned()) {
                    return Err(ParseError::new(no, format!("duplicate net name `{name}`")));
                }
                let weight = parse_finite_f64(no, toks[1], "net weight")?;
                if weight < 0.0 {
                    return Err(ParseError::new(
                        no,
                        format!("net `{name}` has negative weight {weight}"),
                    ));
                }
                let mut pins = Vec::new();
                for pin_tok in &toks[2..] {
                    let parts: Vec<&str> = pin_tok.split(':').collect();
                    if parts.len() != 4 {
                        return Err(ParseError::new(
                            no,
                            format!("pin `{pin_tok}` must be cell:dx:dy:dir"),
                        ));
                    }
                    let cell = *by_name.get(parts[0]).ok_or_else(|| {
                        ParseError::new(no, format!("unknown cell `{}` in net `{name}`", parts[0]))
                    })?;
                    let dx = parse_finite_f64(no, parts[1], "pin dx")?;
                    let dy = parse_finite_f64(no, parts[2], "pin dy")?;
                    let dir = match parts[3] {
                        "I" => PinDirection::Input,
                        "O" => PinDirection::Output,
                        other => {
                            return Err(ParseError::new(no, format!("invalid pin direction `{other}`")));
                        }
                    };
                    pins.push((cell, Vector::new(dx, dy), dir));
                }
                builder.add_weighted_net(name, weight, pins);
            }
            other => {
                return Err(ParseError::new(no, format!("unknown keyword `{other}`")));
            }
        }
    }
    builder
        .build()
        .map_err(|e: BuildError| ParseError::new(0, format!("netlist validation failed: {e}")))
}

/// Serializes a placement keyed by cell name.
#[must_use]
pub fn write_placement(netlist: &Netlist, placement: &Placement) -> String {
    let mut out = String::new();
    for (id, cell) in netlist.cells() {
        let p = placement.position(id);
        let _ = writeln!(out, "place {} {} {}", cell.name(), p.x, p.y);
    }
    out
}

/// Parses a placement for `netlist`; cells not mentioned keep their
/// position from `netlist.initial_placement()`.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed lines or unknown cell names.
pub fn read_placement(netlist: &Netlist, text: &str) -> Result<Placement, ParseError> {
    let by_name: HashMap<&str, CellId> =
        netlist.cells().map(|(id, c)| (c.name(), id)).collect();
    let mut placement = netlist.initial_placement();
    let mut seen: HashSet<CellId> = HashSet::new();
    for (i, line) in text.lines().enumerate() {
        let no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 4 || toks[0] != "place" {
            return Err(ParseError::new(no, "expected `place <cell> <x> <y>`"));
        }
        let id = *by_name
            .get(toks[1])
            .ok_or_else(|| ParseError::new(no, format!("unknown cell `{}`", toks[1])))?;
        if !seen.insert(id) {
            return Err(ParseError::new(
                no,
                format!("cell `{}` placed more than once", toks[1]),
            ));
        }
        let x = parse_finite_f64(no, toks[2], "x")?;
        let y = parse_finite_f64(no, toks[3], "y")?;
        placement.set_position(id, Point::new(x, y));
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, generate};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        b.name("sample");
        b.core_region(Rect::new(0.0, 0.0, 40.0, 40.0));
        b.rows(2, 16.0);
        let a = b.add_cell("u1", Size::new(8.0, 16.0));
        let c = b.add_block("blk", Size::new(12.0, 12.0));
        let p = b.add_fixed_cell("pad0", Size::new(4.0, 4.0), Point::new(0.0, 20.0));
        b.set_power(a, 1.5);
        b.set_delay(a, 0.3);
        b.add_weighted_net(
            "n1",
            2.0,
            [
                (a, Vector::new(1.0, 0.0), PinDirection::Output),
                (c, Vector::ZERO, PinDirection::Input),
                (p, Vector::ZERO, PinDirection::Input),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn netlist_roundtrip_preserves_structure() {
        let nl = sample();
        let text = write_netlist(&nl);
        let back = read_netlist(&text).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.num_cells(), 3);
        assert_eq!(back.num_nets(), 1);
        assert_eq!(back.num_pins(), 3);
        assert_eq!(back.rows().len(), 2);
        assert_eq!(back.core_region(), nl.core_region());
        let a = CellId::from_index(0);
        assert_eq!(back.cell(a).power(), 1.5);
        assert_eq!(back.cell(a).delay(), 0.3);
        assert_eq!(back.net(crate::NetId::from_index(0)).weight(), 2.0);
        assert_eq!(
            back.pin(crate::PinId::from_index(0)).offset(),
            Vector::new(1.0, 0.0)
        );
        assert_eq!(back.cell(CellId::from_index(2)).kind(), CellKind::Fixed);
    }

    #[test]
    fn synthetic_netlist_roundtrips() {
        let nl = generate(&SynthConfig::with_size("rt", 60, 80, 4));
        let text = write_netlist(&nl);
        let back = read_netlist(&text).unwrap();
        assert_eq!(back.num_cells(), nl.num_cells());
        assert_eq!(back.num_nets(), nl.num_nets());
        assert_eq!(back.num_pins(), nl.num_pins());
        // Serialization is deterministic and stable.
        assert_eq!(write_netlist(&back), text);
    }

    #[test]
    fn placement_roundtrip() {
        let nl = sample();
        let mut p = nl.initial_placement();
        p.set_position(CellId::from_index(0), Point::new(7.0, 9.0));
        let text = write_placement(&nl, &p);
        let back = read_placement(&nl, &text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn header_is_required() {
        let err = read_netlist("bogus").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"));
    }

    #[test]
    fn unknown_cell_in_net_is_reported_with_line() {
        let text = "kraftwerk-netlist 1\ncore 0 0 10 10\nnet n1 1 ghost:0:0:O other:0:0:I\n";
        let err = read_netlist(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn duplicate_cell_name_is_rejected() {
        let text = "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a 1 1 std\ncell a 1 1 std\n";
        let err = read_netlist(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "kraftwerk-netlist 1\n# a comment\n\ncore 0 0 10 10\ncell a 1 1 std\ncell b 1 1 std\nnet n 1 a:0:0:O b:0:0:I\n";
        let nl = read_netlist(text).unwrap();
        assert_eq!(nl.num_cells(), 2);
    }

    #[test]
    fn bad_pin_direction_is_reported() {
        let text = "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a 1 1 std\ncell b 1 1 std\nnet n 1 a:0:0:X b:0:0:I\n";
        let err = read_netlist(text).unwrap_err();
        assert!(err.message.contains("direction"));
    }

    #[test]
    fn placement_with_unknown_cell_errors() {
        let nl = sample();
        let err = read_placement(&nl, "place nobody 1 2").unwrap_err();
        assert!(err.message.contains("nobody"));
    }

    #[test]
    fn duplicate_net_name_is_rejected_with_line() {
        let text = "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a 1 1 std\ncell b 1 1 std\nnet n 1 a:0:0:O b:0:0:I\nnet n 1 b:0:0:O a:0:0:I\n";
        let err = read_netlist(text).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("duplicate net"));
    }

    #[test]
    fn negative_cell_width_is_rejected_with_line() {
        let text = "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a -1 1 std\n";
        let err = read_netlist(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("non-positive"));
    }

    #[test]
    fn non_finite_numbers_are_rejected_with_line() {
        for text in [
            "kraftwerk-netlist 1\ncore 0 0 NaN 10\n",
            "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a inf 1 std\n",
            "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a 1 1 std\ncell b 1 1 std\nnet n NaN a:0:0:O b:0:0:I\n",
            "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a 1 1 std\ncell b 1 1 std\nnet n 1 a:NaN:0:O b:0:0:I\n",
        ] {
            let err = read_netlist(text).unwrap_err();
            assert!(err.line > 0, "expected a line number for {text:?}");
            assert!(err.message.contains("non-finite"), "got: {}", err.message);
        }
    }

    #[test]
    fn degenerate_core_is_rejected_with_line() {
        let err = read_netlist("kraftwerk-netlist 1\ncore 0 0 0 10\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("area"));
    }

    #[test]
    fn negative_net_weight_is_rejected() {
        let text = "kraftwerk-netlist 1\ncore 0 0 10 10\ncell a 1 1 std\ncell b 1 1 std\nnet n -2 a:0:0:O b:0:0:I\n";
        let err = read_netlist(text).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("negative weight"));
    }

    #[test]
    fn duplicate_placement_line_is_rejected() {
        let nl = sample();
        let err = read_placement(&nl, "place u1 1 2\nplace u1 3 4\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("more than once"));
    }

    #[test]
    fn non_finite_placement_coordinate_is_rejected() {
        let nl = sample();
        let err = read_placement(&nl, "place u1 NaN 2\n").unwrap_err();
        assert!(err.message.contains("non-finite"));
    }
}
