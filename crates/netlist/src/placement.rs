//! Cell position container.

use crate::ids::CellId;
use kraftwerk_geom::{Point, Rect, Vector};

/// A placement: one center coordinate per cell, indexed by [`CellId`].
///
/// A `Placement` is deliberately dumb — it knows nothing about which cells
/// are fixed; the placers enforce that. This keeps it cheap to clone and
/// lets metrics code treat every placement uniformly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Placement {
    positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement from raw positions, one per cell in id order.
    #[must_use]
    pub fn from_positions(positions: Vec<Point>) -> Self {
        Self { positions }
    }

    /// Number of cells covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the placement covers no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Center position of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for this placement.
    #[must_use]
    pub fn position(&self, cell: CellId) -> Point {
        self.positions[cell.index()]
    }

    /// Moves a cell to a new center position.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for this placement.
    pub fn set_position(&mut self, cell: CellId, at: Point) {
        self.positions[cell.index()] = at;
    }

    /// Translates a cell by a displacement.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for this placement.
    pub fn translate(&mut self, cell: CellId, by: Vector) {
        self.positions[cell.index()] += by;
    }

    /// Read-only view of all positions in cell-id order.
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Mutable view of all positions in cell-id order; used by solvers that
    /// write whole coordinate vectors back.
    #[must_use]
    pub fn positions_mut(&mut self) -> &mut [Point] {
        &mut self.positions
    }

    /// The cell's footprint rectangle given its size.
    #[must_use]
    pub fn cell_rect(&self, cell: CellId, size: kraftwerk_geom::Size) -> Rect {
        Rect::from_center(self.position(cell), size)
    }

    /// Total displacement (sum of Euclidean distances) to another placement
    /// of the same length. Used by the ECO experiments to quantify how much
    /// an incremental change disturbed the placement.
    ///
    /// # Panics
    ///
    /// Panics if the two placements have different lengths.
    #[must_use]
    pub fn total_displacement(&self, other: &Placement) -> f64 {
        assert_eq!(self.len(), other.len(), "placement size mismatch");
        self.positions
            .iter()
            .zip(&other.positions)
            .map(|(a, b)| a.distance(*b))
            .sum()
    }

    /// Largest single-cell displacement to another placement.
    ///
    /// # Panics
    ///
    /// Panics if the two placements have different lengths.
    #[must_use]
    pub fn max_displacement(&self, other: &Placement) -> f64 {
        assert_eq!(self.len(), other.len(), "placement size mismatch");
        self.positions
            .iter()
            .zip(&other.positions)
            .map(|(a, b)| a.distance(*b))
            .fold(0.0, f64::max)
    }
}

impl FromIterator<Point> for Placement {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Self {
            positions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<CellId> {
        (0..n).map(CellId::from_index).collect()
    }

    #[test]
    fn set_and_translate() {
        let mut p = Placement::from_positions(vec![Point::ORIGIN; 3]);
        let id = ids(3);
        p.set_position(id[1], Point::new(2.0, 3.0));
        p.translate(id[1], Vector::new(1.0, -1.0));
        assert_eq!(p.position(id[1]), Point::new(3.0, 2.0));
        assert_eq!(p.position(id[0]), Point::ORIGIN);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn displacement_metrics() {
        let a = Placement::from_positions(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let b = Placement::from_positions(vec![Point::new(3.0, 4.0), Point::new(1.0, 1.0)]);
        assert_eq!(a.total_displacement(&b), 5.0);
        assert_eq!(a.max_displacement(&b), 5.0);
        assert_eq!(a.total_displacement(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "placement size mismatch")]
    fn displacement_size_mismatch_panics() {
        let a = Placement::from_positions(vec![Point::ORIGIN]);
        let b = Placement::from_positions(vec![Point::ORIGIN, Point::ORIGIN]);
        let _ = a.total_displacement(&b);
    }

    #[test]
    fn from_iterator_collects() {
        let p: Placement = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(p.len(), 4);
        assert_eq!(p.position(CellId::from_index(3)), Point::new(3.0, 0.0));
    }
}
