//! Core netlist arena: cells, nets, pins, rows.

use crate::ids::{CellId, NetId, PinId};
use crate::placement::Placement;
use kraftwerk_geom::{Point, Rect, Size, Vector};

/// What kind of object a cell is. The paper's headline claim is that the
/// algorithm treats all three identically during global placement; the
/// distinction matters to legalization and to which cells may move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellKind {
    /// A movable standard cell, legalized into rows.
    #[default]
    Standard,
    /// A movable macro block (floorplanning); not snapped into rows.
    Block,
    /// An immovable object (I/O pad or pre-placed macro) with a fixed
    /// location.
    Fixed,
}

/// Signal direction of a pin as seen from its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDirection {
    /// The pin is driven by the net (a cell input).
    Input,
    /// The pin drives the net (a cell output).
    Output,
}

/// A cell: movable standard cell, movable block, or fixed pad.
#[derive(Debug, Clone)]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) size: Size,
    pub(crate) kind: CellKind,
    pub(crate) fixed_pos: Option<Point>,
    pub(crate) power: f64,
    pub(crate) delay: f64,
    pub(crate) pins: Vec<PinId>,
}

impl Cell {
    /// The cell's name as given at construction.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell dimensions.
    #[must_use]
    pub fn size(&self) -> Size {
        self.size
    }

    /// Footprint area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.size.area()
    }

    /// Cell kind (standard / block / fixed).
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Whether the placer may move this cell.
    #[must_use]
    pub fn is_movable(&self) -> bool {
        self.kind != CellKind::Fixed
    }

    /// Center location for fixed cells, `None` for movable ones.
    #[must_use]
    pub fn fixed_position(&self) -> Option<Point> {
        self.fixed_pos
    }

    /// Switching power estimate (arbitrary units), consumed by the
    /// heat-driven placement mode.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Intrinsic gate delay in nanoseconds, consumed by timing analysis.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Pins attached to this cell.
    #[must_use]
    pub fn pins(&self) -> &[PinId] {
        &self.pins
    }
}

/// A net connecting two or more pins.
#[derive(Debug, Clone)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) weight: f64,
    pub(crate) pins: Vec<PinId>,
}

impl Net {
    /// The net's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Static net weight (default 1.0). Timing-driven flows multiply this
    /// by the iteratively updated criticality weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The pins on this net.
    #[must_use]
    pub fn pins(&self) -> &[PinId] {
        &self.pins
    }

    /// Number of pins (the `k` of the paper's `1/k` clique weight).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// One cell–net incidence.
#[derive(Debug, Clone, Copy)]
pub struct Pin {
    pub(crate) cell: CellId,
    pub(crate) net: NetId,
    pub(crate) offset: Vector,
    pub(crate) direction: PinDirection,
}

impl Pin {
    /// The cell this pin belongs to.
    #[must_use]
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The net this pin belongs to.
    #[must_use]
    pub fn net(&self) -> NetId {
        self.net
    }

    /// Pin offset from the cell center.
    #[must_use]
    pub fn offset(&self) -> Vector {
        self.offset
    }

    /// Signal direction.
    #[must_use]
    pub fn direction(&self) -> PinDirection {
        self.direction
    }
}

/// A standard-cell row of the core region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Bottom y coordinate of the row.
    pub y: f64,
    /// Row (and cell) height.
    pub height: f64,
    /// Left end of the row.
    pub x_lo: f64,
    /// Right end of the row.
    pub x_hi: f64,
}

impl Row {
    /// Horizontal capacity of the row.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x_hi - self.x_lo
    }

    /// The row's area as a rectangle.
    #[must_use]
    pub fn rect(&self) -> Rect {
        Rect::new(self.x_lo, self.y, self.x_hi, self.y + self.height)
    }

    /// Vertical center of the row.
    #[must_use]
    pub fn center_y(&self) -> f64 {
        self.y + self.height * 0.5
    }
}

/// An immutable gate-level netlist with its placement region.
///
/// Construct one through [`crate::NetlistBuilder`], the text format in
/// [`crate::format`], or the generators in [`crate::synth`].
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) cells: Vec<Cell>,
    pub(crate) nets: Vec<Net>,
    pub(crate) pins: Vec<Pin>,
    pub(crate) rows: Vec<Row>,
    pub(crate) core: Rect,
    pub(crate) num_movable: usize,
}

impl Netlist {
    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells of all kinds (movable + fixed).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of movable cells (standard cells and blocks).
    #[must_use]
    pub fn num_movable(&self) -> usize {
        self.num_movable
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    #[must_use]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a pin.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Iterates over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells.iter().enumerate().map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Iterates over movable cells only.
    pub fn movable_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells().filter(|(_, c)| c.is_movable())
    }

    /// Iterates over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets.iter().enumerate().map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterates over all pins with their ids.
    pub fn pins(&self) -> impl Iterator<Item = (PinId, &Pin)> + '_ {
        self.pins.iter().enumerate().map(|(i, p)| (PinId::from_index(i), p))
    }

    /// The placement (core) region.
    #[must_use]
    pub fn core_region(&self) -> Rect {
        self.core
    }

    /// Standard-cell rows, bottom to top. Empty for pure floorplanning
    /// designs.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Total area of movable cells.
    #[must_use]
    pub fn total_movable_area(&self) -> f64 {
        self.cells.iter().filter(|c| c.is_movable()).map(Cell::area).sum()
    }

    /// Mean area of a movable cell. Used by the paper's stopping criterion
    /// (no empty square larger than 4x this value).
    ///
    /// Returns 0.0 when there are no movable cells.
    #[must_use]
    pub fn average_cell_area(&self) -> f64 {
        if self.num_movable == 0 {
            0.0
        } else {
            self.total_movable_area() / self.num_movable as f64
        }
    }

    /// Core utilization: movable area / core area.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_movable_area() / self.core.area()
    }

    /// The pin driving a net (its first `Output` pin), or `None` for nets
    /// without a driver (e.g. nets only touching pads declared as inputs).
    #[must_use]
    pub fn driver_of(&self, net: NetId) -> Option<PinId> {
        self.net(net)
            .pins
            .iter()
            .copied()
            .find(|&p| self.pin(p).direction == PinDirection::Output)
    }

    /// Iterates over the load (input) pins of a net.
    pub fn sinks_of(&self, net: NetId) -> impl Iterator<Item = PinId> + '_ {
        self.nets[net.index()]
            .pins
            .iter()
            .copied()
            .filter(move |&p| self.pins[p.index()].direction == PinDirection::Input)
    }

    /// The paper's initial placement: every movable cell at the center of
    /// the placement area, fixed cells at their fixed location (section 4.2
    /// step 1).
    #[must_use]
    pub fn initial_placement(&self) -> Placement {
        let center = self.core.center();
        let positions = self
            .cells
            .iter()
            .map(|c| c.fixed_pos.unwrap_or(center))
            .collect();
        Placement::from_positions(positions)
    }

    /// Absolute pin location under a placement.
    #[must_use]
    pub fn pin_position(&self, pin: PinId, placement: &Placement) -> Point {
        let p = self.pin(pin);
        placement.position(p.cell) + p.offset
    }

    /// Returns a copy of the netlist with every cell's size replaced by
    /// `f(id, &cell)` — the hook for gate-resizing ECO experiments
    /// (section 5 of the paper lists gate resizing among the netlist
    /// changes the incremental flow absorbs). Movable-cell counts and
    /// connectivity are unchanged; callers re-run placement (typically
    /// incrementally) to absorb the new footprints.
    #[must_use]
    pub fn with_sizes(&self, f: impl Fn(CellId, &Cell) -> Size) -> Netlist {
        let mut out = self.clone();
        for i in 0..out.cells.len() {
            let id = CellId::from_index(i);
            out.cells[i].size = f(id, &self.cells[i]);
        }
        out
    }

    /// Returns a copy of the netlist with every cell's switching power
    /// replaced by `f(id, &cell)` — the hook power-analysis experiments
    /// use to create hot spots without rebuilding the whole netlist.
    #[must_use]
    pub fn with_powers(&self, f: impl Fn(CellId, &Cell) -> f64) -> Netlist {
        let mut out = self.clone();
        for i in 0..out.cells.len() {
            let id = CellId::from_index(i);
            out.cells[i].power = f(id, &self.cells[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new();
        b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
        b.rows(4, 10.0);
        let a = b.add_cell("a", Size::new(4.0, 10.0));
        let c = b.add_cell("c", Size::new(6.0, 10.0));
        let p = b.add_fixed_cell("pad", Size::new(2.0, 2.0), Point::new(0.0, 50.0));
        b.add_net("n1", [(a, PinDirection::Output), (c, PinDirection::Input)]);
        b.add_net("n2", [(c, PinDirection::Output), (p, PinDirection::Input)]);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let n = tiny();
        assert_eq!(n.num_cells(), 3);
        assert_eq!(n.num_movable(), 2);
        assert_eq!(n.num_nets(), 2);
        assert_eq!(n.num_pins(), 4);
        assert_eq!(n.cell(CellId::from_index(0)).name(), "a");
        assert_eq!(n.net(NetId::from_index(1)).name(), "n2");
    }

    #[test]
    fn areas_and_utilization() {
        let n = tiny();
        assert_eq!(n.total_movable_area(), 100.0);
        assert_eq!(n.average_cell_area(), 50.0);
        assert!((n.utilization() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn driver_and_sinks() {
        let n = tiny();
        let n1 = NetId::from_index(0);
        let drv = n.driver_of(n1).unwrap();
        assert_eq!(n.pin(drv).cell(), CellId::from_index(0));
        let sinks: Vec<_> = n.sinks_of(n1).collect();
        assert_eq!(sinks.len(), 1);
        assert_eq!(n.pin(sinks[0]).cell(), CellId::from_index(1));
    }

    #[test]
    fn initial_placement_centers_movables() {
        let n = tiny();
        let p = n.initial_placement();
        assert_eq!(p.position(CellId::from_index(0)), Point::new(50.0, 50.0));
        assert_eq!(p.position(CellId::from_index(2)), Point::new(0.0, 50.0));
    }

    #[test]
    fn cell_pins_back_reference() {
        let n = tiny();
        let c = n.cell(CellId::from_index(1));
        assert_eq!(c.pins().len(), 2);
        for &pid in c.pins() {
            assert_eq!(n.pin(pid).cell(), CellId::from_index(1));
        }
    }

    #[test]
    fn with_sizes_replaces_footprints() {
        let n = tiny();
        let grown = n.with_sizes(|id, c| {
            if id.index() == 0 {
                Size::new(c.size().width * 2.0, c.size().height)
            } else {
                c.size()
            }
        });
        assert_eq!(grown.cell(CellId::from_index(0)).size().width, 8.0);
        assert_eq!(grown.cell(CellId::from_index(1)).size(), n.cell(CellId::from_index(1)).size());
        assert_eq!(grown.num_pins(), n.num_pins());
    }

    #[test]
    fn with_powers_replaces_power_only() {
        let n = tiny();
        let hot = n.with_powers(|id, c| if id.index() == 0 { 9.0 } else { c.power() });
        assert_eq!(hot.cell(CellId::from_index(0)).power(), 9.0);
        assert_eq!(hot.cell(CellId::from_index(1)).power(), 0.0);
        assert_eq!(hot.num_nets(), n.num_nets());
    }

    #[test]
    fn rows_geometry() {
        let n = tiny();
        assert_eq!(n.rows().len(), 4);
        let r = n.rows()[0];
        assert_eq!(r.height, 10.0);
        assert!(r.width() > 0.0);
        assert!(n.core_region().contains_rect(&r.rect()));
        assert_eq!(r.center_y(), r.y + 5.0);
    }
}
