//! Netlist data model for the Kraftwerk placement reproduction.
//!
//! This crate is the substrate every placer in the workspace runs on. It
//! provides:
//!
//! * an arena-style [`Netlist`] of cells, nets and pins with typed ids
//!   ([`CellId`], [`NetId`], [`PinId`]) and a validating [`NetlistBuilder`];
//! * a [`Placement`] container mapping cells to coordinates, plus
//!   wire-length and overlap metrics ([`metrics`]);
//! * a plain-text interchange format ([`mod@format`]) in the spirit of the
//!   Bookshelf suite;
//! * a deterministic synthetic benchmark generator ([`synth`]) that stands
//!   in for the MCNC circuits evaluated in the paper (see `DESIGN.md` for
//!   the substitution rationale) including presets for all nine circuits of
//!   Table 1.
//!
//! # Example
//!
//! ```
//! use kraftwerk_netlist::{NetlistBuilder, PinDirection};
//! use kraftwerk_geom::{Point, Size};
//!
//! let mut b = NetlistBuilder::new();
//! b.core_region(kraftwerk_geom::Rect::new(0.0, 0.0, 100.0, 100.0));
//! let a = b.add_cell("a", Size::new(4.0, 8.0));
//! let c = b.add_cell("c", Size::new(4.0, 8.0));
//! let pad = b.add_fixed_cell("pad", Size::new(2.0, 2.0), Point::new(0.0, 50.0));
//! b.add_net("n1", [(a, PinDirection::Output), (c, PinDirection::Input)]);
//! b.add_net("n2", [(c, PinDirection::Output), (pad, PinDirection::Input)]);
//! let netlist = b.build()?;
//! assert_eq!(netlist.num_cells(), 3);
//! assert_eq!(netlist.num_movable(), 2);
//! # Ok::<(), kraftwerk_netlist::BuildError>(())
//! ```

mod builder;
mod ids;
mod model;
mod placement;
mod validate;

pub mod format;
pub mod metrics;
pub mod stats;
pub mod steiner;
pub mod synth;

pub use builder::{BuildError, NetlistBuilder};
pub use ids::{CellId, NetId, PinId};
pub use model::{Cell, CellKind, Net, Netlist, Pin, PinDirection, Row};
pub use placement::Placement;
pub use validate::{ValidationError, ValidationIssue, MAX_NET_DEGREE};
