//! Cross-crate timing integration: the paper's timing flows measured on
//! fully legalized placements (the configuration Tables 3 and 4 report).

use kraftwerk::legalize::{legalize, refine};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{Netlist, Placement};
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};
use kraftwerk::timing::{meet_requirements, optimize_timing, optimize_timing_legalized, DelayModel, Sta};

fn finish(netlist: &Netlist, global: &Placement) -> Placement {
    let mut legal = legalize(netlist, global).expect("legalizable");
    refine(netlist, &mut legal, 2);
    legal
}

#[test]
fn legalized_timing_driven_placement_exploits_potential() {
    let nl = generate(&SynthConfig::with_size("tflow", 800, 950, 16));
    let model = DelayModel::default();
    let sta = Sta::new(&nl, model).expect("acyclic");
    let cfg = KraftwerkConfig::standard();

    let plain = finish(&nl, &GlobalPlacer::new(cfg.clone()).place(&nl).placement);
    let optimized = optimize_timing_legalized(&nl, model, cfg, 3)
        .expect("acyclic")
        .placement;

    let bound = sta.lower_bound();
    let plain_delay = sta.analyze(&plain).max_delay;
    let opt_delay = sta.analyze(&optimized).max_delay;
    let potential = plain_delay - bound;
    assert!(potential > 0.0, "no potential: plain {plain_delay}, bound {bound}");
    let exploitation = (plain_delay - opt_delay) / potential;
    assert!(
        exploitation > 0.12,
        "legalized exploitation {:.0}% (plain {plain_delay:.2}, opt {opt_delay:.2}, bound {bound:.2})",
        exploitation * 100.0
    );
}

#[test]
fn met_requirements_hold_after_final_placement_analysis() {
    let nl = generate(&SynthConfig::with_size("tmeet", 500, 620, 10));
    let model = DelayModel::default();
    let sta = Sta::new(&nl, model).expect("acyclic");
    let cfg = KraftwerkConfig::standard();
    let plain = GlobalPlacer::new(cfg.clone()).place(&nl);
    let requirement = sta.analyze(&plain.placement).max_delay * 0.9;
    let result = meet_requirements(&nl, model, cfg, requirement, 60).expect("acyclic");
    assert!(result.met);
    // The paper's claim: the placement used for analysis meets the
    // requirement *precisely* — verify on the returned placement.
    assert!(sta.analyze(&result.placement).max_delay <= requirement + 1e-9);
    // The curve is recorded and monotone enough to serve as a trade-off
    // curve (delay decreases overall from the first to the last point).
    assert!(result.curve.len() >= 2);
    let first = result.curve.first().expect("non-empty");
    let last = result.curve.last().expect("non-empty");
    assert!(last.max_delay < first.max_delay);
}

#[test]
fn timing_mode_costs_bounded_wire_length() {
    let nl = generate(&SynthConfig::with_size("tcost", 500, 620, 10));
    let model = DelayModel::default();
    let cfg = KraftwerkConfig::standard();
    let plain = finish(&nl, &GlobalPlacer::new(cfg.clone()).place(&nl).placement);
    let optimized = finish(&nl, &optimize_timing(&nl, model, cfg).expect("acyclic").placement);
    let plain_hpwl = kraftwerk::netlist::metrics::hpwl(&nl, &plain);
    let opt_hpwl = kraftwerk::netlist::metrics::hpwl(&nl, &optimized);
    // Timing mode trades wire length for delay, within a sane envelope.
    assert!(
        opt_hpwl < 3.0 * plain_hpwl,
        "timing mode exploded wire length: {opt_hpwl:.0} vs {plain_hpwl:.0}"
    );
}
