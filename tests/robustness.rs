//! Adversarial-input and watchdog-recovery tests.
//!
//! The library must be panic-free on any input: hostile netlists are
//! rejected at the validation boundary with a typed [`KraftwerkError`],
//! and numerically diverging runs are caught by the session watchdog,
//! rolled back to the best-so-far checkpoint, and either recovered or
//! returned degraded — never a crash, never a garbage placement.

use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{
    metrics, Netlist, NetlistBuilder, PinDirection, ValidationIssue, MAX_NET_DEGREE,
};
use kraftwerk::placer::{
    GlobalPlacer, KraftwerkConfig, KraftwerkError, PlacementSession, WatchdogConfig,
};
use kraftwerk_geom::{Point, Rect, Size, Vector};

fn placer() -> GlobalPlacer {
    GlobalPlacer::new(KraftwerkConfig::standard())
}

/// Every coordinate of every movable cell is finite and inside the
/// (slightly inflated) core.
fn assert_placement_sane(nl: &Netlist, result: &kraftwerk::placer::PlaceResult) {
    let core = nl.core_region().inflate(1.0);
    for (id, cell) in nl.movable_cells() {
        let p = result.placement.position(id);
        assert!(
            p.x.is_finite() && p.y.is_finite(),
            "cell `{}` has non-finite position",
            cell.name()
        );
        assert!(
            core.contains(p),
            "cell `{}` at ({}, {}) escaped the core",
            cell.name(),
            p.x,
            p.y
        );
    }
}

#[test]
fn single_cell_netlist_places_cleanly() {
    let mut b = NetlistBuilder::new();
    b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
    b.add_cell("only", Size::new(4.0, 8.0));
    let nl = b.build().expect("single-cell netlist builds");
    let result = placer().try_place(&nl).expect("single cell places");
    assert!(result.health.is_clean());
    assert_placement_sane(&nl, &result);
}

#[test]
fn all_fixed_netlist_returns_converged() {
    let mut b = NetlistBuilder::new();
    b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
    let a = b.add_fixed_cell("a", Size::new(4.0, 8.0), Point::new(10.0, 10.0));
    let c = b.add_fixed_cell("c", Size::new(4.0, 8.0), Point::new(90.0, 90.0));
    b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
    let nl = b.build().expect("all-fixed netlist builds");
    let result = placer().try_place(&nl).expect("nothing to move");
    assert!(result.converged);
    assert!(result.health.is_clean());
    assert_eq!(result.stats.len(), 0);
}

#[test]
fn zero_area_core_is_rejected_without_panic() {
    let mut b = NetlistBuilder::new();
    b.core_region(Rect::new(50.0, 20.0, 50.0, 80.0)); // zero width
    let a = b.add_cell("a", Size::new(4.0, 8.0));
    let c = b.add_cell("c", Size::new(4.0, 8.0));
    b.add_net("n", [(a, PinDirection::Output), (c, PinDirection::Input)]);
    let nl = b.build().expect("builder does not police core area");
    let err = placer().try_place(&nl).expect_err("validation must reject");
    let KraftwerkError::Validation(v) = &err else {
        panic!("expected Validation, got {err:?}");
    };
    assert!(v
        .issues
        .iter()
        .any(|i| matches!(i, ValidationIssue::ZeroAreaCore { .. })));
    assert_eq!(err.exit_code(), 5);
}

#[test]
fn nan_pin_offset_is_rejected_without_panic() {
    let mut b = NetlistBuilder::new();
    b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
    let a = b.add_cell("a", Size::new(4.0, 8.0));
    let c = b.add_cell("c", Size::new(4.0, 8.0));
    b.add_weighted_net(
        "poison",
        1.0,
        [
            (a, Vector::new(f64::NAN, 0.0), PinDirection::Output),
            (c, Vector::ZERO, PinDirection::Input),
        ],
    );
    let nl = b.build().expect("builder does not police pin offsets");
    let err = placer().try_place(&nl).expect_err("validation must reject");
    assert_eq!(err.stage(), "validation");
    assert!(err.to_string().contains("non-finite pin offset"));
}

#[test]
fn clique_net_above_degree_cap_is_rejected() {
    let mut b = NetlistBuilder::new();
    b.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
    let a = b.add_cell("a", Size::new(4.0, 8.0));
    let c = b.add_cell("c", Size::new(4.0, 8.0));
    let net = b.add_net("reset", [(a, PinDirection::Output), (c, PinDirection::Input)]);
    for _ in 0..MAX_NET_DEGREE {
        b.add_pin_to_net(net, a, PinDirection::Input);
    }
    let nl = b.build().expect("builder does not cap net degree");
    let err = placer().try_place(&nl).expect_err("validation must reject");
    let KraftwerkError::Validation(v) = &err else {
        panic!("expected Validation, got {err:?}");
    };
    assert!(v
        .issues
        .iter()
        .any(|i| matches!(i, ValidationIssue::NetDegreeOverflow { .. })));
}

#[test]
fn ten_thousand_pin_net_places_without_panic() {
    // Below the degree cap a pathological high-fanout net must still go
    // through (the hybrid net model decomposes it as a star).
    let mut b = NetlistBuilder::new();
    b.core_region(Rect::new(0.0, 0.0, 400.0, 400.0));
    let cells: Vec<_> = (0..200)
        .map(|i| b.add_cell(format!("c{i}"), Size::new(4.0, 8.0)))
        .collect();
    let net = b.add_net(
        "fanout",
        [
            (cells[0], PinDirection::Output),
            (cells[1], PinDirection::Input),
        ],
    );
    for i in 0..10_000 {
        b.add_pin_to_net(net, cells[i % 200], PinDirection::Input);
    }
    let nl = b.build().expect("high-fanout netlist builds");
    let result = placer().try_place(&nl).expect("fanout net places");
    assert_placement_sane(&nl, &result);
}

#[test]
fn watchdog_trip_rolls_back_to_best_so_far() {
    let nl = generate(&SynthConfig::with_size("wd-trip", 150, 200, 6));
    // Exhaust the recovery budget so the trip is fatal: the session must
    // end up sitting on its checkpoint, not on the diverged placement.
    let mut fatal = KraftwerkConfig::standard();
    fatal.watchdog = WatchdogConfig {
        max_recoveries: 0,
        ..fatal.watchdog
    };
    let mut session = PlacementSession::new(&nl, fatal);
    // Record every healthy state: the checkpoint is the density-best of
    // these, so the rollback must land bitwise on one of them.
    let mut seen = Vec::new();
    for _ in 0..3 {
        session.try_transform().expect("healthy transformations");
        seen.push((session.iteration(), session.placement().clone()));
    }
    assert!(session.health().is_clean(), "healthy run must not trip");
    session.inject_force_scale_boost(500.0);
    let err = session.try_transform().expect_err("boosted step must trip");
    assert!(matches!(err, KraftwerkError::Diverged { .. }));
    assert_eq!(err.exit_code(), 6);
    let health = session.health();
    assert!(health.trips >= 1);
    assert_eq!(health.recoveries, 0);
    let restored = seen
        .iter()
        .find(|(it, _)| *it == session.iteration())
        .expect("rollback must rewind to a previously accepted iteration");
    assert_eq!(
        &restored.1,
        session.placement(),
        "rollback must restore the checkpointed placement bitwise"
    );
    let rolled_hpwl = metrics::hpwl(&nl, session.placement());
    assert!(rolled_hpwl.is_finite());
}

#[test]
fn watchdog_recovers_from_one_shot_divergence() {
    let nl = generate(&SynthConfig::with_size("wd-recover", 150, 200, 6));
    let mut session = PlacementSession::new(&nl, KraftwerkConfig::standard());
    for _ in 0..2 {
        session.try_transform().expect("healthy transformations");
    }
    // One-shot fault: the injected boost is consumed by the diverging
    // attempt, so the rollback retry runs unperturbed and succeeds.
    session.inject_force_scale_boost(500.0);
    let stats = session.try_transform().expect("retry after rollback");
    assert!(stats.hpwl.is_finite());
    let health = session.health();
    assert!(health.trips >= 1, "the boosted attempt must trip");
    assert!(health.recoveries >= 1, "the retry must be a recovery");
    assert!(!health.degraded);
}

#[test]
fn forced_divergence_run_returns_checkpointed_best() {
    // Persistent fault injection: every retry diverges again, the budget
    // runs out, and the run must still return the checkpointed best.
    let nl = generate(&SynthConfig::with_size("wd-degraded", 150, 200, 6));
    let mut config = KraftwerkConfig::standard();
    config.force_scale_boost = 40.0;
    let result = GlobalPlacer::new(config)
        .try_place(&nl)
        .expect("degraded run still returns the checkpoint");
    assert!(result.health.recoveries >= 1);
    assert!(result.health.degraded);
    assert!(result.health.trips > result.health.recoveries);
    assert_placement_sane(&nl, &result);
}

#[test]
fn try_place_matches_place_on_healthy_input() {
    let nl = generate(&SynthConfig::with_size("wd-equiv", 120, 150, 6));
    let infallible = placer().place(&nl);
    let fallible = placer().try_place(&nl).expect("healthy input");
    assert_eq!(infallible.placement, fallible.placement, "bitwise identical");
    assert_eq!(infallible.stats, fallible.stats);
    assert!(fallible.health.is_clean());
}

#[test]
fn disabled_watchdog_still_returns_finite_placements() {
    let nl = generate(&SynthConfig::with_size("wd-off", 100, 130, 6));
    let mut config = KraftwerkConfig::standard();
    config.watchdog.enabled = false;
    let result = GlobalPlacer::new(config).try_place(&nl).expect("healthy");
    assert!(result.health.is_clean());
    assert_placement_sane(&nl, &result);
}

#[test]
fn expired_wall_clock_budget_marks_budget_exhausted() {
    let nl = generate(&SynthConfig::with_size("wd-budget", 150, 200, 6));
    let mut config = KraftwerkConfig::standard();
    config.watchdog.wall_clock_budget = Some(0.0);
    let result = GlobalPlacer::new(config).try_place(&nl).expect("budgeted run returns");
    assert!(result.health.budget_exhausted, "zero budget must cut the run short");
    assert_eq!(result.iterations(), 0, "no transformation fits a zero budget");
    assert_eq!(
        result.health.remaining_budget_ms,
        Some(0),
        "an exhausted budget reports zero remaining"
    );
    assert_placement_sane(&nl, &result);
}

#[test]
fn explicit_deadline_takes_precedence_over_budget() {
    let nl = generate(&SynthConfig::with_size("wd-deadline", 120, 150, 6));
    let mut config = KraftwerkConfig::standard();
    // A generous relative budget, but an already-expired absolute
    // deadline: the deadline must win.
    config.watchdog.wall_clock_budget = Some(1e9);
    config.watchdog.deadline = Some(std::time::Instant::now());
    let result = GlobalPlacer::new(config).try_place(&nl).expect("deadlined run returns");
    assert!(result.health.budget_exhausted);
    assert_eq!(result.iterations(), 0);
}

#[test]
fn budget_free_runs_report_no_remaining_budget() {
    let nl = generate(&SynthConfig::with_size("wd-nobudget", 100, 130, 6));
    let result = placer().try_place(&nl).expect("healthy");
    assert_eq!(
        result.health.remaining_budget_ms, None,
        "runs without a budget must stay bitwise comparable"
    );
}

#[test]
fn budget_exhausted_survives_multilevel_health_merge() {
    use kraftwerk::placer::{try_place_multilevel, MultilevelConfig};
    // Big enough to build a real hierarchy (>= 2 levels) with a small
    // coarsest tier, so the merged health crosses several level sessions.
    let nl = generate(&SynthConfig::with_size("wd-ml-budget", 2000, 2600, 7));
    let ml = MultilevelConfig {
        coarsest_movable: 250,
        ..MultilevelConfig::default()
    };
    let mut config = KraftwerkConfig::fast();
    config.watchdog.deadline = Some(std::time::Instant::now());
    let result =
        try_place_multilevel(&nl, config, &ml).expect("expired deadline still yields a placement");
    assert!(
        result.health.budget_exhausted,
        "budget_exhausted must survive the cross-level health merge"
    );
    assert_eq!(result.health.remaining_budget_ms, Some(0));
    assert_placement_sane(&nl, &result);
}

#[test]
fn nonsense_budget_expires_instead_of_running_unbounded() {
    for bad in [f64::NAN, f64::NEG_INFINITY, -5.0] {
        let wd = WatchdogConfig {
            wall_clock_budget: Some(bad),
            ..WatchdogConfig::default()
        };
        let deadline = wd.resolve_deadline().expect("budget present resolves");
        assert!(
            deadline <= std::time::Instant::now(),
            "a nonsense budget ({bad}) must resolve to an expired deadline"
        );
    }
    assert!(WatchdogConfig::default().resolve_deadline().is_none());
}
