//! Experiment A4 (DESIGN.md): ECO / incremental placement disturbs an
//! existing placement minimally (paper section 5).

use kraftwerk::geom::Size;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, CellId, CellKind, Netlist, NetlistBuilder, NetId, PinDirection, Placement};
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};

/// Clones a netlist and appends `extra` buffer-like cells spliced into
/// existing nets.
fn with_extra_cells(original: &Netlist, extra: usize) -> Netlist {
    let mut b = NetlistBuilder::new();
    b.name(format!("{}_eco", original.name()));
    b.core_region(original.core_region());
    if let Some(row) = original.rows().first() {
        b.rows(original.rows().len(), row.height);
    }
    let mut ids = Vec::new();
    for (_, cell) in original.cells() {
        let id = match cell.kind() {
            CellKind::Fixed => b.add_fixed_cell(
                cell.name(),
                cell.size(),
                cell.fixed_position().expect("fixed has position"),
            ),
            CellKind::Block => b.add_block(cell.name(), cell.size()),
            CellKind::Standard => b.add_cell(cell.name(), cell.size()),
        };
        ids.push(id);
    }
    for (_, net) in original.nets() {
        let pins: Vec<_> = net
            .pins()
            .iter()
            .map(|&p| {
                let pin = original.pin(p);
                (ids[pin.cell().index()], pin.offset(), pin.direction())
            })
            .collect();
        b.add_weighted_net(net.name(), net.weight(), pins);
    }
    for i in 0..extra {
        let id = b.add_cell(format!("eco{i}"), Size::new(6.0, 16.0));
        let net = NetId::from_index((i * 53) % original.num_nets());
        b.add_pin_to_net(net, id, PinDirection::Input);
    }
    b.build().expect("valid ECO netlist")
}

#[test]
fn eco_disturbs_far_less_than_replacement() {
    let original = generate(&SynthConfig::with_size("eco_int", 600, 720, 12));
    let placer = GlobalPlacer::new(KraftwerkConfig::standard());
    let before = placer.place(&original);

    let changed = with_extra_cells(&original, original.num_movable() / 100);
    let warm: Placement = changed
        .cell_ids()
        .map(|id| {
            if id.index() < original.num_cells() {
                before.placement.position(CellId::from_index(id.index()))
            } else {
                changed.core_region().center()
            }
        })
        .collect();

    let eco = placer.place_incremental(&changed, warm);
    let scratch = placer.place(&changed);

    let mut eco_moved = 0.0;
    let mut scratch_moved = 0.0;
    for id in original.cell_ids() {
        let p0 = before.placement.position(id);
        let idc = CellId::from_index(id.index());
        eco_moved += p0.distance(eco.placement.position(idc));
        scratch_moved += p0.distance(scratch.placement.position(idc));
    }
    assert!(
        eco_moved < 0.5 * scratch_moved,
        "ECO displacement {eco_moved:.0} should be far below scratch {scratch_moved:.0}"
    );

    // The adapted placement stays usable: wire length within 15% of the
    // original design's.
    let eco_hpwl = metrics::hpwl(&changed, &eco.placement);
    let before_hpwl = metrics::hpwl(&original, &before.placement);
    assert!(
        eco_hpwl < 1.15 * before_hpwl,
        "ECO hpwl {eco_hpwl:.0} vs original {before_hpwl:.0}"
    );
}

#[test]
fn gate_resizing_is_absorbed_incrementally() {
    // Section 5 lists "gate resizing techniques" among the netlist
    // changes the incremental flow handles: grow 5% of the cells by 60%
    // and re-place incrementally.
    let nl = generate(&SynthConfig::with_size("eco_resize", 500, 620, 10));
    let placer = GlobalPlacer::new(KraftwerkConfig::standard());
    let before = placer.place(&nl);

    let resized = nl.with_sizes(|id, cell| {
        if id.index() % 20 == 0 && cell.is_movable() {
            Size::new(cell.size().width * 1.6, cell.size().height)
        } else {
            cell.size()
        }
    });
    let eco = placer.place_incremental(&resized, before.placement.clone());

    // Disturbance stays modest: the resized cells' neighbourhoods adapt,
    // the rest of the placement barely moves.
    let avg = before.placement.total_displacement(&eco.placement) / nl.num_movable() as f64;
    assert!(
        avg < 0.05 * resized.core_region().half_perimeter(),
        "avg displacement {avg:.2}"
    );
    // And the result still legalizes with the new footprints.
    let legal = kraftwerk::legalize::legalize(&resized, &eco.placement).expect("capacity");
    assert!(kraftwerk::legalize::check_legality(&resized, &legal, 1e-6).is_legal());
}

#[test]
fn unchanged_netlist_eco_is_nearly_a_fixed_point() {
    let nl = generate(&SynthConfig::with_size("eco_fix", 400, 500, 10));
    let placer = GlobalPlacer::new(KraftwerkConfig::standard());
    let first = placer.place(&nl);
    let eco = placer.place_incremental(&nl, first.placement.clone());
    let avg = first.placement.total_displacement(&eco.placement) / nl.num_movable() as f64;
    assert!(
        avg < 0.02 * nl.core_region().half_perimeter(),
        "avg displacement {avg:.2} on unchanged netlist"
    );
}
