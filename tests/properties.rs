//! Cross-crate property-based tests: invariants that must hold for *any*
//! circuit the generator can produce, not just the benchmark presets.

use kraftwerk::field::{
    density_map, largest_empty_square, ForceField, HybridSolver, HybridWorkspace,
    MultigridSolver, MultigridWorkspace, ScalarMap, SpectralSolver, SpectralWorkspace,
};
use kraftwerk::geom::Rect;
use kraftwerk::legalize::{check_legality, legalize};
use kraftwerk::netlist::format::{bookshelf, read_netlist, write_netlist};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, NetlistBuilder, PinDirection};
use kraftwerk::placer::{NetModel, QuadraticSystem};
use kraftwerk::sparse::{solve, CgOptions, JacobiPreconditioner};
use kraftwerk::timing::{DelayModel, Sta};
use kraftwerk::trace::{bucket_bounds, bucket_index};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Strategy: a generator config with varied shape.
fn synth_configs() -> impl Strategy<Value = SynthConfig> {
    (30usize..300, 2usize..10, 0u64..50, 0usize..3).prop_map(|(cells, rows, seed, blocks)| {
        let nets = cells + cells / 4 + 10;
        SynthConfig::with_size(format!("prop{seed}"), cells, nets, rows)
            .seed(seed)
            .blocks(blocks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_netlists_are_structurally_sound(cfg in synth_configs()) {
        let nl = generate(&cfg);
        prop_assert_eq!(nl.num_movable(), cfg.cells + cfg.blocks);
        prop_assert_eq!(nl.num_nets(), cfg.nets);
        // Every net has exactly one driver and at least two pins.
        for (id, net) in nl.nets() {
            prop_assert!(net.degree() >= 2);
            let drivers = net
                .pins()
                .iter()
                .filter(|&&p| nl.pin(p).direction() == PinDirection::Output)
                .count();
            prop_assert_eq!(drivers, 1, "net {} has {} drivers", id, drivers);
        }
        // Every cell is connected.
        for (id, cell) in nl.cells() {
            prop_assert!(!cell.pins().is_empty(), "cell {} floating", id);
        }
    }

    #[test]
    fn generated_netlists_are_acyclic_with_positive_bound(cfg in synth_configs()) {
        let nl = generate(&cfg);
        let sta = Sta::new(&nl, DelayModel::default());
        prop_assert!(sta.is_ok(), "combinational loop in generated circuit");
        let bound = sta.unwrap().lower_bound();
        prop_assert!(bound > 0.0 && bound.is_finite());
    }

    #[test]
    fn density_map_always_integrates_to_zero(cfg in synth_configs(), seed in 0u64..100) {
        let nl = generate(&cfg);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let core = nl.core_region();
        let mut p = nl.initial_placement();
        for (id, cell) in nl.cells() {
            if cell.is_movable() {
                p.set_position(id, kraftwerk::geom::Point::new(
                    rng.gen_range(core.x_lo..core.x_hi),
                    rng.gen_range(core.y_lo..core.y_hi),
                ));
            }
        }
        let d = density_map(&nl, &p, 16, 8);
        prop_assert!(d.integral().abs() < 1e-6);
        prop_assert!(d.values().iter().all(|v| v.is_finite()));
        // The empty-square area never exceeds the core area.
        let empty = largest_empty_square(&nl, &p, 64);
        prop_assert!(empty <= core.area() + 1e-9);
    }

    #[test]
    fn random_placements_legalize_when_rows_exist(cfg in synth_configs(), seed in 0u64..100) {
        let nl = generate(&cfg);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let core = nl.core_region();
        let mut p = nl.initial_placement();
        for (id, cell) in nl.cells() {
            if cell.kind() == kraftwerk::netlist::CellKind::Standard {
                p.set_position(id, kraftwerk::geom::Point::new(
                    rng.gen_range(core.x_lo..core.x_hi),
                    rng.gen_range(core.y_lo..core.y_hi),
                ));
            }
        }
        // Blocks (if any) may overlap rows arbitrarily in this random
        // placement; the legalizer treats them as obstacles, so capacity
        // can be insufficient — only assert on block-free designs.
        if cfg.blocks == 0 {
            let legal = legalize(&nl, &p).expect("block-free circuits legalize");
            let report = check_legality(&nl, &legal, 1e-6);
            prop_assert!(report.is_legal(), "{:?}", report);
            prop_assert!(metrics::hpwl(&nl, &legal).is_finite());
        }
    }

    #[test]
    fn text_format_roundtrips_any_generated_netlist(cfg in synth_configs()) {
        let nl = generate(&cfg);
        let text = write_netlist(&nl);
        let back = read_netlist(&text).expect("own output parses");
        prop_assert_eq!(back.num_cells(), nl.num_cells());
        prop_assert_eq!(back.num_nets(), nl.num_nets());
        prop_assert_eq!(back.num_pins(), nl.num_pins());
        prop_assert_eq!(write_netlist(&back), text);
    }

    #[test]
    fn bookshelf_roundtrips_any_generated_netlist(cfg in synth_configs()) {
        let nl = generate(&cfg);
        let files = bookshelf::write(&nl, Some(&nl.initial_placement()));
        let (back, placement) = bookshelf::read(&files).expect("own output parses");
        prop_assert_eq!(back.num_cells(), nl.num_cells());
        prop_assert_eq!(back.num_nets(), nl.num_nets());
        let placement = placement.expect("placement present");
        let a = metrics::hpwl(&nl, &nl.initial_placement());
        let b = metrics::hpwl(&back, &placement);
        prop_assert!((a - b).abs() < 1e-3 * a.max(1.0), "hpwl {} vs {}", a, b);
    }

    #[test]
    fn quadratic_solutions_satisfy_their_equations(cfg in synth_configs()) {
        let nl = generate(&cfg);
        let sys = QuadraticSystem::new(&nl);
        let asm = sys.assemble(&nl, &nl.initial_placement(), None, NetModel::default(), None);
        let b: Vec<f64> = asm.dx.iter().map(|v| -v).collect();
        let result = solve(
            &asm.cx,
            &b,
            None,
            &JacobiPreconditioner::from_matrix(&asm.cx),
            &CgOptions { max_iterations: 2000, ..CgOptions::default() },
        );
        prop_assert!(result.converged, "residual {}", result.residual_norm);
        // Verify the residual independently.
        let mut ax = vec![0.0; b.len()];
        asm.cx.spmv(&result.x, &mut ax);
        let mut err = 0.0f64;
        let mut scale = 1e-12f64;
        for i in 0..b.len() {
            err += (ax[i] - b[i]).powi(2);
            scale += b[i].powi(2);
        }
        prop_assert!((err / scale).sqrt() < 1e-4);
    }

    #[test]
    fn sta_slacks_are_consistent(cfg in synth_configs()) {
        let nl = generate(&cfg);
        let sta = Sta::new(&nl, DelayModel::default()).expect("acyclic");
        let report = sta.analyze(&nl.initial_placement());
        prop_assert!(report.max_delay >= sta.lower_bound() - 1e-9);
        for &s in &report.net_slack {
            if s.is_finite() {
                prop_assert!(s >= -1e-9, "negative slack {}", s);
            }
        }
        // Timed nets on the critical path have (near-)zero slack; huge
        // nets are excluded from timing and carry infinite slack even
        // when the longest path runs through them.
        for &net in &report.critical_path {
            let s = report.net_slack[net.index()];
            prop_assert!(s < 1e-6 || s.is_infinite(), "slack {} on critical net", s);
        }
    }

    #[test]
    fn b2b_and_clique_gradients_match_hpwl_on_short_nets(
        k in 2usize..=3,
        px in 0usize..6,
        py in 0usize..6,
        j in (
            (0.0f64..8.0, 0.0f64..8.0, 0.0f64..8.0),
            (0.0f64..8.0, 0.0f64..8.0, 0.0f64..8.0),
        ),
    ) {
        let jx = [j.0 .0, j.0 .1, j.0 .2];
        let jy = [j.1 .0, j.1 .1, j.1 .2];
        // For degree-2 and degree-3 nets both net models linearize to the
        // exact HPWL gradient pattern at the reference placement: ∓w on
        // the per-axis extreme pins, 0 on an interior pin. B2B produces
        // the gradient at unit scale for every degree; the clique's scale
        // is 2(k−1)/k (each extreme sees k−1 linearized edges of weight
        // w/k), which is 1 at k = 2 and 4/3 at k = 3.
        const PERM3: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        // Slot bases 30 units apart with <8 units of jitter keep the three
        // coordinates distinct per axis, so extreme pins are unambiguous.
        let xs_ref: Vec<f64> =
            (0..k).map(|i| 10.0 + 30.0 * PERM3[px][i] as f64 + jx[i]).collect();
        let ys_ref: Vec<f64> =
            (0..k).map(|i| 10.0 + 30.0 * PERM3[py][i] as f64 + jy[i]).collect();

        let mut bld = NetlistBuilder::new();
        bld.core_region(Rect::new(0.0, 0.0, 100.0, 100.0));
        let ids: Vec<_> = (0..k)
            .map(|i| bld.add_cell(format!("c{i}"), kraftwerk::geom::Size::new(1.0, 1.0)))
            .collect();
        bld.add_net(
            "n",
            ids.iter().enumerate().map(|(i, &id)| {
                (id, if i == 0 { PinDirection::Output } else { PinDirection::Input })
            }),
        );
        let nl = bld.build().expect("valid net");
        let mut p = nl.initial_placement();
        for (i, &id) in ids.iter().enumerate() {
            p.set_position(id, kraftwerk::geom::Point::new(xs_ref[i], ys_ref[i]));
        }

        let sys = QuadraticSystem::new(&nl);
        let (xs, ys) = sys.coords(&p);
        let force = |model: NetModel| {
            let asm = sys.assemble(&nl, &p, None, model, Some(1e-6));
            sys.spring_force(&asm, &xs, &ys)
        };
        let (bfx, bfy) = force(NetModel::B2B);
        let (cfx, cfy) = force(NetModel::Clique);

        // Force = −gradient: +1 on the min pin, −1 on the max pin.
        let expected = |coords: &[f64], i: usize| {
            let min = (0..k).min_by(|&a, &b| coords[a].total_cmp(&coords[b])).unwrap();
            let max = (0..k).max_by(|&a, &b| coords[a].total_cmp(&coords[b])).unwrap();
            if i == min { 1.0 } else if i == max { -1.0 } else { 0.0 }
        };
        let clique_scale = 2.0 * (k as f64 - 1.0) / k as f64;
        for (i, &id) in ids.iter().enumerate() {
            let m = sys.movable_index(id).unwrap();
            let (ex, ey) = (expected(&xs_ref, i), expected(&ys_ref, i));
            // 1e-3 absorbs the tiny center anchor every assembly adds.
            prop_assert!((bfx[m] - ex).abs() < 1e-3, "b2b fx[{}] = {} want {}", i, bfx[m], ex);
            prop_assert!((bfy[m] - ey).abs() < 1e-3, "b2b fy[{}] = {} want {}", i, bfy[m], ey);
            prop_assert!(
                (cfx[m] - clique_scale * ex).abs() < 1e-3,
                "clique fx[{}] = {} want {}", i, cfx[m], clique_scale * ex
            );
            prop_assert!(
                (cfy[m] - clique_scale * ey).abs() < 1e-3,
                "clique fy[{}] = {} want {}", i, cfy[m], clique_scale * ey
            );
        }
    }

    #[test]
    fn histogram_buckets_bracket_every_finite_positive_sample(
        bits in 0u64..0x7ff0_0000_0000_0000
    ) {
        // Every bit pattern below the exponent mask decodes to a finite,
        // non-negative f64 — zero, subnormal or normal — which is exactly
        // the sample range the telemetry histogram must bracket: the
        // bucket a value lands in has to cover the value.
        let v = f64::from_bits(bits);
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx as u8);
        prop_assert!(lo <= v && v < hi, "v={:e} bucket {} = [{:e}, {:e})", v, idx, lo, hi);
    }

    #[test]
    fn spectral_and_multigrid_potentials_agree_on_random_densities(seed in 0u64..200) {
        // The spectral backend diagonalizes the *same* padded Dirichlet
        // system the multigrid backend iterates on, so a tight-tolerance
        // multigrid solve must match it to ≤1e-6 relative on any density
        // grid — power-of-two or not, square or not.
        let nx = 8 + (seed as usize) % 23;
        let ny = 8 + (seed as usize / 23) % 19;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut d = ScalarMap::zeros(Rect::new(0.0, 0.0, 12.0, 9.0), nx, ny);
        for iy in 0..ny {
            for ix in 0..nx {
                d.set(ix, iy, rng.gen_range(-1.0..1.0));
            }
        }
        d.balance();

        let spectral = SpectralSolver::new();
        let mut sp_ws = SpectralWorkspace::default();
        let mut sp_out = ForceField::zeros(d.region(), nx, ny);
        spectral.solve_reusing(&d, &mut sp_ws, &mut sp_out);
        let sp_phi = spectral.potential_map(&d, &sp_ws).expect("spectral potential");

        let mg = MultigridSolver {
            tolerance: 1e-12,
            max_cycles: 300,
            ..MultigridSolver::default()
        };
        let mut mg_ws = MultigridWorkspace::default();
        let mut mg_out = ForceField::zeros(d.region(), nx, ny);
        mg.solve_reusing(&d, &mut mg_ws, &mut mg_out);
        let mg_phi = mg.potential_map(&d, &mg_ws).expect("multigrid potential");

        let mut err_sq = 0.0;
        let mut base_sq = 1e-30;
        for iy in 0..ny {
            for ix in 0..nx {
                err_sq += (sp_phi.get(ix, iy) - mg_phi.get(ix, iy)).powi(2);
                base_sq += mg_phi.get(ix, iy).powi(2);
            }
        }
        let rel = (err_sq / base_sq).sqrt();
        prop_assert!(rel <= 1e-6, "{}x{} grid: relative potential error {:e}", nx, ny, rel);
    }

    #[test]
    fn hybrid_and_multigrid_potentials_agree_on_random_densities(seed in 0u64..200) {
        // The hybrid backend is multigrid with a spectral warm start:
        // the coarse seed changes the iteration trajectory, never the
        // fixed point, so a tight-tolerance hybrid solve must land on
        // the same potential as a tight-tolerance multigrid solve.
        let nx = 8 + (seed as usize) % 23;
        let ny = 8 + (seed as usize / 23) % 19;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut d = ScalarMap::zeros(Rect::new(0.0, 0.0, 12.0, 9.0), nx, ny);
        for iy in 0..ny {
            for ix in 0..nx {
                d.set(ix, iy, rng.gen_range(-1.0..1.0));
            }
        }
        d.balance();

        let hybrid = HybridSolver {
            tolerance: 1e-12,
            max_cycles: 300,
            ..HybridSolver::default()
        };
        let mut hy_ws = HybridWorkspace::default();
        let mut hy_out = ForceField::zeros(d.region(), nx, ny);
        hybrid.solve_reusing(&d, &mut hy_ws, &mut hy_out);
        let hy_phi = hybrid.potential_map(&d, &hy_ws).expect("hybrid potential");

        let mg = MultigridSolver {
            tolerance: 1e-12,
            max_cycles: 300,
            ..MultigridSolver::default()
        };
        let mut mg_ws = MultigridWorkspace::default();
        let mut mg_out = ForceField::zeros(d.region(), nx, ny);
        mg.solve_reusing(&d, &mut mg_ws, &mut mg_out);
        let mg_phi = mg.potential_map(&d, &mg_ws).expect("multigrid potential");

        let mut err_sq = 0.0;
        let mut base_sq = 1e-30;
        for iy in 0..ny {
            for ix in 0..nx {
                err_sq += (hy_phi.get(ix, iy) - mg_phi.get(ix, iy)).powi(2);
                base_sq += mg_phi.get(ix, iy).powi(2);
            }
        }
        let rel = (err_sq / base_sq).sqrt();
        prop_assert!(rel <= 1e-6, "{}x{} grid: relative potential error {:e}", nx, ny, rel);
    }
}
