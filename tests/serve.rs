//! Adversarial integration tests for the placement daemon: every frame a
//! hostile or unlucky client can send — truncated frames, oversized
//! netlists, NaN numerics, duplicate job ids, disconnects mid-stream —
//! must produce the right structured error class, and the daemon must
//! keep serving afterwards. The fault-injection matrix (parse,
//! divergence, deadline, stall) is exercised end to end over the wire.

use std::time::Duration;

use kraftwerk::netlist::format::{read_placement, write_netlist};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::serve::{Client, ClientError, Mode, PlaceOptions, ServeConfig, Server, ServerHandle};
use kraftwerk::trace::json::Json;

/// Starts an in-process daemon on a free port; the join handle yields the
/// run summary after [`ServerHandle::shutdown`].
fn start(cfg: ServeConfig) -> (
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<kraftwerk::serve::ServerSummary>>,
) {
    let server = Server::bind(cfg).expect("bind on a free port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn netlist_text(name: &str, cells: usize, nets: usize, rows: usize) -> String {
    write_netlist(&generate(&SynthConfig::with_size(name, cells, nets, rows)))
}

fn quick() -> PlaceOptions {
    PlaceOptions {
        max_transformations: Some(8),
        ..PlaceOptions::default()
    }
}

#[test]
fn good_job_round_trips_with_progress_and_placement() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-good", 60, 80, 4);
    let opts = PlaceOptions {
        return_placement: true,
        progress_every: 1,
        ..quick()
    };
    let out = c.place("good-1", &text, &opts).expect("transport ok");
    assert_eq!(out.status, "ok", "healthy job must not degrade");
    assert!(out.hpwl.is_finite() && out.hpwl > 0.0);
    assert!(out.iterations > 0);
    assert!(out.progress_frames > 0, "progress_every=1 must stream");
    let placement_text = out.placement.expect("placement requested");
    let nl = kraftwerk::netlist::format::read_netlist(&text).expect("own netlist");
    let placement = read_placement(&nl, &placement_text).expect("returned placement parses");
    assert_eq!(placement.len(), nl.num_cells());
    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_ok, 1);
    assert_eq!(summary.jobs_failed, 0);
}

#[test]
fn malformed_and_truncated_frames_answer_protocol_errors() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Not JSON at all.
    c.send_raw("this is not json").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(frame.get("stage").and_then(Json::as_str), Some("protocol"));
    assert_eq!(frame.get("code").and_then(Json::as_f64), Some(2.0));
    // A truncated JSON object (the classic torn frame).
    c.send_raw("{\"type\":\"place\",\"id\":\"t1\",\"netl").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("stage").and_then(Json::as_str), Some("protocol"));
    // Wrong shape: valid JSON, missing everything.
    c.send_raw("{\"type\":\"place\"}").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    // The same connection still serves a good job afterwards.
    let text = netlist_text("srv-after-garbage", 40, 50, 4);
    let out = c.place("after-garbage", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_ok, 1);
}

#[test]
fn oversized_netlist_is_rejected_and_stream_resyncs() {
    let cfg = ServeConfig {
        max_frame_bytes: 16384,
        ..ServeConfig::default()
    };
    let (handle, join) = start(cfg);
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Well over the 16 KiB frame cap.
    let big = netlist_text("srv-big", 400, 500, 8);
    assert!(big.len() > 16384);
    let opts = quick();
    let out = c.place("too-big", &big, &opts).expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("validation"));
    assert_eq!(out.error_code, Some(5));
    // The reader resynced at the newline: a small job still works.
    let small = netlist_text("srv-small", 20, 25, 4);
    let out = c.place("small-after-big", &small, &opts).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn nan_numerics_in_netlist_fail_with_parse_class() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Corrupt the first cell's width into NaN; the boundary parser
    // rejects non-finite numerics with the parse class.
    let text = netlist_text("srv-nan", 40, 50, 4);
    let nan_text: String = text
        .lines()
        .map(|line| {
            if line.starts_with("cell ") {
                let mut parts: Vec<&str> = line.split_whitespace().collect();
                parts[2] = "NaN";
                parts.join(" ")
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let out = c.place("nan-job", &nan_text, &quick()).expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("parse"));
    assert_eq!(out.error_code, Some(4));
    // Isolation: the daemon still serves.
    let out = c.place("after-nan", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn duplicate_in_flight_job_id_is_rejected() {
    let (handle, join) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let text = netlist_text("srv-dup", 60, 80, 4);
    let mut c1 = Client::connect(handle.addr()).expect("connect 1");
    let mut c2 = Client::connect(handle.addr()).expect("connect 2");
    // Job 1 stalls its worker for STALL_MS, guaranteeing it is still in
    // flight when the duplicate arrives on the second connection.
    let stall_opts = PlaceOptions {
        fault: Some("stall"),
        ..quick()
    };
    c1.send_raw(&place_frame("dup-id", &text, &stall_opts)).expect("send");
    std::thread::sleep(Duration::from_millis(60));
    let out2 = c2.place("dup-id", &text, &quick()).expect("transport");
    assert_eq!(out2.status, "error");
    assert_eq!(out2.error_stage.as_deref(), Some("validation"));
    assert_eq!(out2.error_code, Some(5));
    // The original job is unaffected.
    let out1 = c1.wait_for_outcome("dup-id").expect("transport");
    assert!(out1.status == "ok" || out1.status == "degraded");
    // Once finished, the id is free again.
    let out3 = c2.place("dup-id", &text, &quick()).expect("transport");
    assert!(out3.status == "ok" || out3.status == "degraded");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

/// Builds a raw `place` frame (tests that need to submit without
/// blocking on the outcome).
fn place_frame(id: &str, netlist: &str, opts: &PlaceOptions) -> String {
    let mut o = kraftwerk::trace::json::JsonObject::new();
    o.str_field("type", "place");
    o.str_field("id", id);
    o.str_field("mode", opts.mode.name());
    o.str_field("netlist", netlist);
    if let Some(cap) = opts.max_transformations {
        o.u64_field("max_transformations", cap as u64);
    }
    o.u64_field("progress_every", opts.progress_every as u64);
    o.bool_field("retry", opts.retry);
    if let Some(fault) = opts.fault {
        o.str_field("fault", fault);
    }
    o.finish()
}

#[test]
fn full_queue_answers_busy_with_retry_hint() {
    let (handle, join) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 77,
        ..ServeConfig::default()
    });
    let text = netlist_text("srv-busy", 60, 80, 4);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let stall_opts = PlaceOptions {
        fault: Some("stall"),
        ..quick()
    };
    // j1 occupies the single worker (stalled >= 250 ms), j2 fills the
    // queue, j3 must bounce with the configured retry hint.
    c.send_raw(&place_frame("busy-1", &text, &stall_opts)).expect("send");
    std::thread::sleep(Duration::from_millis(80));
    c.send_raw(&place_frame("busy-2", &text, &quick())).expect("send");
    std::thread::sleep(Duration::from_millis(20));
    c.send_raw(&place_frame("busy-3", &text, &quick())).expect("send");
    let out3 = c.wait_for_outcome("busy-3").expect("transport");
    assert_eq!(out3.status, "busy", "third job must hit backpressure");
    assert_eq!(out3.retry_after_ms, Some(77));
    let out1 = c.wait_for_outcome("busy-1").expect("transport");
    assert!(out1.status == "ok" || out1.status == "degraded");
    let out2 = c.wait_for_outcome("busy-2").expect("transport");
    assert!(out2.status == "ok" || out2.status == "degraded");
    // A rejected id is immediately reusable.
    let out = c.place("busy-3", &text, &quick()).expect("transport");
    assert!(out.status == "ok" || out.status == "degraded");
    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_rejected, 1);
    assert_eq!(summary.jobs_failed, 0);
}

#[test]
fn disconnect_mid_stream_leaves_daemon_serving() {
    let (handle, join) = start(ServeConfig::default());
    let text = netlist_text("srv-drop", 80, 100, 4);
    {
        let mut c = Client::connect(handle.addr()).expect("connect");
        let opts = PlaceOptions {
            progress_every: 1,
            ..PlaceOptions::default()
        };
        c.send_raw(&place_frame("dropped", &text, &opts)).expect("send");
        // Drop the connection while the job streams progress.
    }
    std::thread::sleep(Duration::from_millis(50));
    // The daemon is alive and the dropped job completed server-side.
    let mut c = Client::connect(handle.addr()).expect("reconnect");
    let out = c.place("after-drop", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    // Wait for the dropped job to finish, then check it was counted.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = c.stats().expect("stats");
        let done = stats.get("jobs_ok").and_then(Json::as_f64).unwrap_or(0.0)
            + stats.get("jobs_degraded").and_then(Json::as_f64).unwrap_or(0.0);
        if done >= 2.0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "dropped job never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn fault_matrix_parse_divergence_deadline_stall() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-fault", 150, 200, 6);

    // parse: corrupted netlist → structured parse error, daemon alive.
    let out = c
        .place("f-parse", &text, &PlaceOptions { fault: Some("parse"), ..quick() })
        .expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("parse"));
    assert_eq!(out.error_code, Some(4));

    // divergence: watchdog trips; either the checkpointed degraded result
    // survives (after the damped retry) or the taxonomy's diverged error
    // surfaces. Both are structured; the daemon must keep serving.
    let out = c
        .place(
            "f-diverge",
            &text,
            &PlaceOptions { fault: Some("divergence"), ..PlaceOptions::default() },
        )
        .expect("transport");
    match out.status.as_str() {
        "degraded" => assert!(out.retried, "degraded first attempt must retry damped"),
        "error" => assert_eq!(out.error_code, Some(6)),
        other => panic!("divergence fault produced unexpected status {other}"),
    }

    // deadline: an already-expired budget returns the checkpointed state
    // immediately, marked budget_exhausted.
    let out = c
        .place(
            "f-deadline",
            &text,
            &PlaceOptions { fault: Some("deadline"), ..PlaceOptions::default() },
        )
        .expect("transport");
    assert_eq!(out.status, "degraded");
    assert!(out.budget_exhausted);
    assert_eq!(out.iterations, 0);
    assert!(!out.retried, "an exhausted budget must not be retried");

    // stall: the worker sleeps mid-job but the generous default deadline
    // absorbs it.
    let out = c
        .place("f-stall", &text, &PlaceOptions { fault: Some("stall"), ..quick() })
        .expect("transport");
    assert!(out.status == "ok" || out.status == "degraded");
    assert!(out.wall_ms >= kraftwerk::serve::fault::STALL_MS);

    // The same connection still serves a clean job after the whole matrix.
    let out = c.place("f-clean", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn env_fault_applies_daemon_wide() {
    // The per-job flag and KRAFTWERK_FAULT share FaultKind::from_env;
    // exercise the config-level daemon-wide fault (the env var's landing
    // spot) without mutating process environment in a threaded test.
    let (handle, join) = start(ServeConfig {
        fault: Some(kraftwerk::serve::FaultKind::Parse),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-envfault", 40, 50, 4);
    let out = c.place("env-1", &text, &quick()).expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("parse"));
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn journal_records_jobs_and_recover_replays_them() {
    let dir = std::env::temp_dir().join(format!("kw-serve-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (handle, join) = start(ServeConfig {
        journal_dir: Some(dir.clone()),
        journal_positions_every: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-journal", 40, 50, 4);
    let out = c.place("journaled", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    // The recover frame replays the finished job with its positions.
    c.send_raw("{\"type\":\"recover\",\"include_placement\":true}").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("recovered"));
    let jobs = frame.get("jobs").and_then(Json::as_array).expect("jobs array");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("id").and_then(Json::as_str), Some("journaled"));
    assert_eq!(jobs[0].get("finished").map(|v| matches!(v, Json::Bool(true))), Some(true));
    let replayed = jobs[0]
        .get("placement")
        .and_then(Json::as_str)
        .expect("positions journaled");
    let nl = kraftwerk::netlist::format::read_netlist(&text).expect("own netlist");
    assert!(read_placement(&nl, replayed).is_ok());
    // The journal file itself survives daemon shutdown (crash-safety is
    // exactly that the file outlives the process).
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
    let recovered = kraftwerk::serve::recover_journals(&dir);
    assert_eq!(recovered.len(), 1);
    assert!(recovered[0].finished);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multilevel_mode_serves_over_the_wire() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-ml", 300, 400, 8);
    let opts = PlaceOptions {
        mode: Mode::Multilevel,
        ..PlaceOptions::default()
    };
    let out = c.place("ml-1", &text, &opts).expect("transport");
    assert_eq!(out.status, "ok");
    assert!(out.hpwl.is_finite() && out.hpwl > 0.0);
    assert!(out.iterations > 0);
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn shutdown_frame_drains_and_stops_the_daemon() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let pong = c.ping().expect("pong");
    assert_eq!(pong.get("type").and_then(Json::as_str), Some("pong"));
    c.shutdown().expect("shutdown handshake");
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.connections, 1);
    // A fresh connect must now fail (the listener is gone).
    std::thread::sleep(Duration::from_millis(20));
    assert!(matches!(
        Client::connect(handle.addr()),
        Err(ClientError::Io(_)) | Err(ClientError::Disconnected)
    ));
}

#[test]
fn stats_frame_reports_service_metrics() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-stats", 60, 80, 4);
    assert_eq!(c.place("st-1", &text, &quick()).expect("transport").status, "ok");
    let out = c
        .place("st-2", &text, &PlaceOptions { fault: Some("parse"), ..quick() })
        .expect("transport");
    assert_eq!(out.status, "error");
    // The solve-wall sample is observed a moment after the result frame
    // is sent, so poll until both histograms have absorbed both jobs
    // before asserting on the snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = c.stats().expect("stats");
        let count = |k: &str| {
            stats.get(k).and_then(|s| s.get("count")).and_then(Json::as_f64).unwrap_or(0.0)
        };
        if count("queue_wait_s") >= 2.0 && count("solve_wall_s") >= 2.0 {
            break stats;
        }
        assert!(std::time::Instant::now() < deadline, "histograms never reached 2 samples");
        std::thread::sleep(Duration::from_millis(10));
    };
    let num = |k: &str| stats.get(k).and_then(Json::as_f64);
    assert_eq!(num("jobs_ok"), Some(1.0));
    assert_eq!(num("jobs_failed"), Some(1.0));
    assert_eq!(num("queue_depth"), Some(0.0));
    assert_eq!(num("in_flight"), Some(0.0));
    assert!(num("workers").unwrap_or(0.0) >= 1.0);
    assert!(num("queue_capacity").unwrap_or(0.0) >= 1.0);
    assert!(num("uptime_s").unwrap_or(-1.0) >= 0.0);
    // Latency summaries: both jobs were picked up and finished, so both
    // histograms carry two samples with finite percentile estimates.
    for family in ["queue_wait_s", "solve_wall_s"] {
        let summary = stats.get(family).unwrap_or_else(|| panic!("{family} in stats"));
        assert_eq!(summary.get("count").and_then(Json::as_f64), Some(2.0));
        for q in ["p50", "p90", "p99"] {
            let v = summary.get(q).and_then(Json::as_f64).unwrap_or(f64::NAN);
            assert!(v.is_finite() && v >= 0.0, "{family}.{q} = {v}");
        }
    }
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn trace_id_round_trips_frames_and_run_report() {
    let report_dir =
        std::env::temp_dir().join(format!("kw-serve-reports-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&report_dir);
    let (handle, join) = start(ServeConfig {
        report_dir: Some(report_dir.clone()),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-trace", 60, 80, 4);

    // Raw frames: every response frame for the job must echo the id.
    let mut o = kraftwerk::trace::json::JsonObject::new();
    o.str_field("type", "place");
    o.str_field("id", "traced-1");
    o.str_field("mode", "fast");
    o.str_field("netlist", &text);
    o.u64_field("progress_every", 1);
    o.str_field("trace_id", "trace-abc.123");
    c.send_raw(&o.finish()).expect("send");
    let mut seen_progress = false;
    loop {
        let frame = c.read_frame().expect("frame");
        let kind = frame.get("type").and_then(Json::as_str).unwrap_or("");
        if matches!(kind, "queued" | "progress" | "result" | "error" | "busy") {
            assert_eq!(
                frame.get("trace_id").and_then(Json::as_str),
                Some("trace-abc.123"),
                "{kind} frame must echo the client trace id"
            );
        }
        if kind == "progress" {
            seen_progress = true;
        }
        if matches!(kind, "result" | "error" | "busy") {
            assert_eq!(kind, "result");
            break;
        }
    }
    assert!(seen_progress, "progress_every=1 must stream progress frames");

    // The client surfaces the echoed id on the outcome too.
    let opts = PlaceOptions {
        trace_id: Some("trace-xyz".into()),
        ..quick()
    };
    let out = c.place("traced-2", &text, &opts).expect("transport");
    assert_eq!(out.status, "ok");
    assert_eq!(out.trace_id.as_deref(), Some("trace-xyz"));
    assert!(out.queue_depth.is_some(), "queued ack carries queue depth");

    // An invalid trace id is a structured validation error.
    let out = c
        .place(
            "traced-bad",
            &text,
            &PlaceOptions { trace_id: Some("bad id with spaces".into()), ..quick() },
        )
        .expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_code, Some(5));

    handle.shutdown();
    join.join().expect("no panic").expect("clean run");

    // Both successful jobs left run reports whose meta record joins the
    // service-side trace id to the solver-level report.
    for (job, trace) in [("traced-1", "trace-abc.123"), ("traced-2", "trace-xyz")] {
        let path = report_dir.join(format!("{job}.jsonl"));
        let report = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
        let meta = report.lines().next().expect("meta line");
        let parsed = kraftwerk::trace::json::parse(meta).expect("meta parses");
        assert_eq!(parsed.get("trace_id").and_then(Json::as_str), Some(trace));
        assert_eq!(parsed.get("job_id").and_then(Json::as_str), Some(job));
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert!(parsed
            .get("hpwl")
            .and_then(Json::as_f64)
            .is_some_and(|v| v.is_finite() && v > 0.0));
    }
    let _ = std::fs::remove_dir_all(&report_dir);
}

/// Minimal HTTP GET against the metrics sidecar.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("sidecar connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_sidecar_serves_prometheus_and_healthz() {
    let (handle, join) = start(ServeConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    });
    let sidecar = handle.metrics_addr().expect("sidecar bound");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-prom", 60, 80, 4);
    assert_eq!(c.place("prom-1", &text, &quick()).expect("transport").status, "ok");
    let out = c
        .place("prom-2", &text, &PlaceOptions { fault: Some("parse"), ..quick() })
        .expect("transport");
    assert_eq!(out.status, "error");

    let (status, body) = http_get(sidecar, "/metrics");
    assert_eq!(status, 200);
    let sample = |line: &str| {
        body.lines()
            .find(|l| l.starts_with(line))
            .unwrap_or_else(|| panic!("missing series {line} in:\n{body}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(sample("kraftwerk_jobs_total{outcome=\"ok\"}"), "1");
    assert_eq!(sample("kraftwerk_jobs_total{outcome=\"failed\"}"), "1");
    assert_eq!(sample("kraftwerk_queue_wait_seconds_count"), "2");
    assert_eq!(sample("kraftwerk_solve_wall_seconds_count"), "2");
    assert!(body.contains("kraftwerk_queue_wait_seconds_bucket{le=\""));
    assert!(body.contains("kraftwerk_solve_wall_seconds_bucket{le=\"+Inf\"}"));
    // Exposition is parseable line by line: comments are HELP/TYPE,
    // samples are `name[{labels}] value` with a numeric value.
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unexpected comment: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample shape");
        assert!(!series.is_empty());
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "bad sample value in: {line}"
        );
    }

    let (status, health) = http_get(sidecar, "/healthz");
    assert_eq!(status, 200);
    let parsed = kraftwerk::trace::json::parse(health.trim()).expect("healthz is JSON");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(parsed.get("queue_depth").and_then(Json::as_f64), Some(0.0));

    let (status, _) = http_get(sidecar, "/nope");
    assert_eq!(status, 404);

    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn non_draining_client_cannot_stall_the_daemon() {
    let (handle, join) = start(ServeConfig {
        workers: 1,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let text = netlist_text("srv-nodrain", 80, 100, 4);
    // A raw socket that submits progress-heavy jobs and never reads a
    // byte back: with blocking progress writes a full socket would wedge
    // the single worker forever; best-effort emission must keep jobs
    // finishing.
    let mut writer = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let jobs = 12usize;
    for i in 0..jobs {
        let mut o = kraftwerk::trace::json::JsonObject::new();
        o.str_field("type", "place");
        o.str_field("id", &format!("nodrain-{i}"));
        o.str_field("mode", "fast");
        o.str_field("netlist", &text);
        o.u64_field("progress_every", 1);
        o.bool_field("retry", false);
        let mut frame = o.finish();
        frame.push('\n');
        std::io::Write::write_all(&mut writer, frame.as_bytes()).expect("submit");
    }
    // From a second connection, wait (bounded) for every job to finish.
    let mut c = Client::connect(handle.addr()).expect("connect 2");
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let stats = c.stats().expect("stats");
        let done = stats.get("jobs_ok").and_then(Json::as_f64).unwrap_or(0.0)
            + stats.get("jobs_degraded").and_then(Json::as_f64).unwrap_or(0.0)
            + stats.get("jobs_failed").and_then(Json::as_f64).unwrap_or(0.0);
        if done >= jobs as f64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "non-draining client stalled the daemon: {done}/{jobs} jobs finished"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The daemon still serves a well-behaved client afterwards.
    let out = c.place("after-nodrain", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn placement_is_bitwise_deterministic_with_metrics_enabled() {
    // Full observability on: metrics sidecar, run reports, trace ids,
    // progress frames. None of it may perturb the solver.
    let text = netlist_text("srv-det", 120, 160, 6);
    let mut hpwls: Vec<u64> = Vec::new();
    for &threads in &[1usize, 2, 8] {
        kraftwerk::par::set_threads(threads);
        let report_dir = std::env::temp_dir().join(format!(
            "kw-serve-det-{}-{threads}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&report_dir);
        let (handle, join) = start(ServeConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            report_dir: Some(report_dir.clone()),
            ..ServeConfig::default()
        });
        let mut c = Client::connect(handle.addr()).expect("connect");
        let opts = PlaceOptions {
            trace_id: Some(format!("det-{threads}")),
            progress_every: 1,
            ..PlaceOptions::default()
        };
        let out = c.place("det-job", &text, &opts).expect("transport");
        assert_eq!(out.status, "ok");
        hpwls.push(out.hpwl.to_bits());
        handle.shutdown();
        join.join().expect("no panic").expect("clean run");
        let _ = std::fs::remove_dir_all(&report_dir);
    }
    kraftwerk::par::set_threads(0);
    assert_eq!(
        hpwls[0], hpwls[1],
        "1-thread and 2-thread HPWL must match bitwise with metrics on"
    );
    assert_eq!(hpwls[1], hpwls[2], "2- and 8-thread HPWL must match bitwise");
}
