//! Adversarial integration tests for the placement daemon: every frame a
//! hostile or unlucky client can send — truncated frames, oversized
//! netlists, NaN numerics, duplicate job ids, disconnects mid-stream —
//! must produce the right structured error class, and the daemon must
//! keep serving afterwards. The fault-injection matrix (parse,
//! divergence, deadline, stall) is exercised end to end over the wire.

use std::time::Duration;

use kraftwerk::netlist::format::{read_placement, write_netlist};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::serve::{Client, ClientError, Mode, PlaceOptions, ServeConfig, Server, ServerHandle};
use kraftwerk::trace::json::Json;

/// Starts an in-process daemon on a free port; the join handle yields the
/// run summary after [`ServerHandle::shutdown`].
fn start(cfg: ServeConfig) -> (
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<kraftwerk::serve::ServerSummary>>,
) {
    let server = Server::bind(cfg).expect("bind on a free port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn netlist_text(name: &str, cells: usize, nets: usize, rows: usize) -> String {
    write_netlist(&generate(&SynthConfig::with_size(name, cells, nets, rows)))
}

fn quick() -> PlaceOptions {
    PlaceOptions {
        max_transformations: Some(8),
        ..PlaceOptions::default()
    }
}

#[test]
fn good_job_round_trips_with_progress_and_placement() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-good", 60, 80, 4);
    let opts = PlaceOptions {
        return_placement: true,
        progress_every: 1,
        ..quick()
    };
    let out = c.place("good-1", &text, &opts).expect("transport ok");
    assert_eq!(out.status, "ok", "healthy job must not degrade");
    assert!(out.hpwl.is_finite() && out.hpwl > 0.0);
    assert!(out.iterations > 0);
    assert!(out.progress_frames > 0, "progress_every=1 must stream");
    let placement_text = out.placement.expect("placement requested");
    let nl = kraftwerk::netlist::format::read_netlist(&text).expect("own netlist");
    let placement = read_placement(&nl, &placement_text).expect("returned placement parses");
    assert_eq!(placement.len(), nl.num_cells());
    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_ok, 1);
    assert_eq!(summary.jobs_failed, 0);
}

#[test]
fn malformed_and_truncated_frames_answer_protocol_errors() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Not JSON at all.
    c.send_raw("this is not json").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(frame.get("stage").and_then(Json::as_str), Some("protocol"));
    assert_eq!(frame.get("code").and_then(Json::as_f64), Some(2.0));
    // A truncated JSON object (the classic torn frame).
    c.send_raw("{\"type\":\"place\",\"id\":\"t1\",\"netl").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("stage").and_then(Json::as_str), Some("protocol"));
    // Wrong shape: valid JSON, missing everything.
    c.send_raw("{\"type\":\"place\"}").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    // The same connection still serves a good job afterwards.
    let text = netlist_text("srv-after-garbage", 40, 50, 4);
    let out = c.place("after-garbage", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_ok, 1);
}

#[test]
fn oversized_netlist_is_rejected_and_stream_resyncs() {
    let cfg = ServeConfig {
        max_frame_bytes: 16384,
        ..ServeConfig::default()
    };
    let (handle, join) = start(cfg);
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Well over the 16 KiB frame cap.
    let big = netlist_text("srv-big", 400, 500, 8);
    assert!(big.len() > 16384);
    let opts = quick();
    let out = c.place("too-big", &big, &opts).expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("validation"));
    assert_eq!(out.error_code, Some(5));
    // The reader resynced at the newline: a small job still works.
    let small = netlist_text("srv-small", 20, 25, 4);
    let out = c.place("small-after-big", &small, &opts).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn nan_numerics_in_netlist_fail_with_parse_class() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    // Corrupt the first cell's width into NaN; the boundary parser
    // rejects non-finite numerics with the parse class.
    let text = netlist_text("srv-nan", 40, 50, 4);
    let nan_text: String = text
        .lines()
        .map(|line| {
            if line.starts_with("cell ") {
                let mut parts: Vec<&str> = line.split_whitespace().collect();
                parts[2] = "NaN";
                parts.join(" ")
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let out = c.place("nan-job", &nan_text, &quick()).expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("parse"));
    assert_eq!(out.error_code, Some(4));
    // Isolation: the daemon still serves.
    let out = c.place("after-nan", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn duplicate_in_flight_job_id_is_rejected() {
    let (handle, join) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let text = netlist_text("srv-dup", 60, 80, 4);
    let mut c1 = Client::connect(handle.addr()).expect("connect 1");
    let mut c2 = Client::connect(handle.addr()).expect("connect 2");
    // Job 1 stalls its worker for STALL_MS, guaranteeing it is still in
    // flight when the duplicate arrives on the second connection.
    let stall_opts = PlaceOptions {
        fault: Some("stall"),
        ..quick()
    };
    c1.send_raw(&place_frame("dup-id", &text, &stall_opts)).expect("send");
    std::thread::sleep(Duration::from_millis(60));
    let out2 = c2.place("dup-id", &text, &quick()).expect("transport");
    assert_eq!(out2.status, "error");
    assert_eq!(out2.error_stage.as_deref(), Some("validation"));
    assert_eq!(out2.error_code, Some(5));
    // The original job is unaffected.
    let out1 = c1.wait_for_outcome("dup-id").expect("transport");
    assert!(out1.status == "ok" || out1.status == "degraded");
    // Once finished, the id is free again.
    let out3 = c2.place("dup-id", &text, &quick()).expect("transport");
    assert!(out3.status == "ok" || out3.status == "degraded");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

/// Builds a raw `place` frame (tests that need to submit without
/// blocking on the outcome).
fn place_frame(id: &str, netlist: &str, opts: &PlaceOptions) -> String {
    let mut o = kraftwerk::trace::json::JsonObject::new();
    o.str_field("type", "place");
    o.str_field("id", id);
    o.str_field("mode", opts.mode.name());
    o.str_field("netlist", netlist);
    if let Some(cap) = opts.max_transformations {
        o.u64_field("max_transformations", cap as u64);
    }
    o.u64_field("progress_every", opts.progress_every as u64);
    o.bool_field("retry", opts.retry);
    if let Some(fault) = opts.fault {
        o.str_field("fault", fault);
    }
    o.finish()
}

#[test]
fn full_queue_answers_busy_with_retry_hint() {
    let (handle, join) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 77,
        ..ServeConfig::default()
    });
    let text = netlist_text("srv-busy", 60, 80, 4);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let stall_opts = PlaceOptions {
        fault: Some("stall"),
        ..quick()
    };
    // j1 occupies the single worker (stalled >= 250 ms), j2 fills the
    // queue, j3 must bounce with the configured retry hint.
    c.send_raw(&place_frame("busy-1", &text, &stall_opts)).expect("send");
    std::thread::sleep(Duration::from_millis(80));
    c.send_raw(&place_frame("busy-2", &text, &quick())).expect("send");
    std::thread::sleep(Duration::from_millis(20));
    c.send_raw(&place_frame("busy-3", &text, &quick())).expect("send");
    let out3 = c.wait_for_outcome("busy-3").expect("transport");
    assert_eq!(out3.status, "busy", "third job must hit backpressure");
    assert_eq!(out3.retry_after_ms, Some(77));
    let out1 = c.wait_for_outcome("busy-1").expect("transport");
    assert!(out1.status == "ok" || out1.status == "degraded");
    let out2 = c.wait_for_outcome("busy-2").expect("transport");
    assert!(out2.status == "ok" || out2.status == "degraded");
    // A rejected id is immediately reusable.
    let out = c.place("busy-3", &text, &quick()).expect("transport");
    assert!(out.status == "ok" || out.status == "degraded");
    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_rejected, 1);
    assert_eq!(summary.jobs_failed, 0);
}

#[test]
fn disconnect_mid_stream_leaves_daemon_serving() {
    let (handle, join) = start(ServeConfig::default());
    let text = netlist_text("srv-drop", 80, 100, 4);
    {
        let mut c = Client::connect(handle.addr()).expect("connect");
        let opts = PlaceOptions {
            progress_every: 1,
            ..PlaceOptions::default()
        };
        c.send_raw(&place_frame("dropped", &text, &opts)).expect("send");
        // Drop the connection while the job streams progress.
    }
    std::thread::sleep(Duration::from_millis(50));
    // The daemon is alive and the dropped job completed server-side.
    let mut c = Client::connect(handle.addr()).expect("reconnect");
    let out = c.place("after-drop", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    // Wait for the dropped job to finish, then check it was counted.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = c.stats().expect("stats");
        let done = stats.get("jobs_ok").and_then(Json::as_f64).unwrap_or(0.0)
            + stats.get("jobs_degraded").and_then(Json::as_f64).unwrap_or(0.0);
        if done >= 2.0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "dropped job never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn fault_matrix_parse_divergence_deadline_stall() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-fault", 150, 200, 6);

    // parse: corrupted netlist → structured parse error, daemon alive.
    let out = c
        .place("f-parse", &text, &PlaceOptions { fault: Some("parse"), ..quick() })
        .expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("parse"));
    assert_eq!(out.error_code, Some(4));

    // divergence: watchdog trips; either the checkpointed degraded result
    // survives (after the damped retry) or the taxonomy's diverged error
    // surfaces. Both are structured; the daemon must keep serving.
    let out = c
        .place(
            "f-diverge",
            &text,
            &PlaceOptions { fault: Some("divergence"), ..PlaceOptions::default() },
        )
        .expect("transport");
    match out.status.as_str() {
        "degraded" => assert!(out.retried, "degraded first attempt must retry damped"),
        "error" => assert_eq!(out.error_code, Some(6)),
        other => panic!("divergence fault produced unexpected status {other}"),
    }

    // deadline: an already-expired budget returns the checkpointed state
    // immediately, marked budget_exhausted.
    let out = c
        .place(
            "f-deadline",
            &text,
            &PlaceOptions { fault: Some("deadline"), ..PlaceOptions::default() },
        )
        .expect("transport");
    assert_eq!(out.status, "degraded");
    assert!(out.budget_exhausted);
    assert_eq!(out.iterations, 0);
    assert!(!out.retried, "an exhausted budget must not be retried");

    // stall: the worker sleeps mid-job but the generous default deadline
    // absorbs it.
    let out = c
        .place("f-stall", &text, &PlaceOptions { fault: Some("stall"), ..quick() })
        .expect("transport");
    assert!(out.status == "ok" || out.status == "degraded");
    assert!(out.wall_ms >= kraftwerk::serve::fault::STALL_MS);

    // The same connection still serves a clean job after the whole matrix.
    let out = c.place("f-clean", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn env_fault_applies_daemon_wide() {
    // The per-job flag and KRAFTWERK_FAULT share FaultKind::from_env;
    // exercise the config-level daemon-wide fault (the env var's landing
    // spot) without mutating process environment in a threaded test.
    let (handle, join) = start(ServeConfig {
        fault: Some(kraftwerk::serve::FaultKind::Parse),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-envfault", 40, 50, 4);
    let out = c.place("env-1", &text, &quick()).expect("transport");
    assert_eq!(out.status, "error");
    assert_eq!(out.error_stage.as_deref(), Some("parse"));
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn journal_records_jobs_and_recover_replays_them() {
    let dir = std::env::temp_dir().join(format!("kw-serve-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (handle, join) = start(ServeConfig {
        journal_dir: Some(dir.clone()),
        journal_positions_every: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-journal", 40, 50, 4);
    let out = c.place("journaled", &text, &quick()).expect("transport");
    assert_eq!(out.status, "ok");
    // The recover frame replays the finished job with its positions.
    c.send_raw("{\"type\":\"recover\",\"include_placement\":true}").expect("send");
    let frame = c.read_frame().expect("frame");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("recovered"));
    let jobs = frame.get("jobs").and_then(Json::as_array).expect("jobs array");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("id").and_then(Json::as_str), Some("journaled"));
    assert_eq!(jobs[0].get("finished").map(|v| matches!(v, Json::Bool(true))), Some(true));
    let replayed = jobs[0]
        .get("placement")
        .and_then(Json::as_str)
        .expect("positions journaled");
    let nl = kraftwerk::netlist::format::read_netlist(&text).expect("own netlist");
    assert!(read_placement(&nl, replayed).is_ok());
    // The journal file itself survives daemon shutdown (crash-safety is
    // exactly that the file outlives the process).
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
    let recovered = kraftwerk::serve::recover_journals(&dir);
    assert_eq!(recovered.len(), 1);
    assert!(recovered[0].finished);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multilevel_mode_serves_over_the_wire() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = netlist_text("srv-ml", 300, 400, 8);
    let opts = PlaceOptions {
        mode: Mode::Multilevel,
        ..PlaceOptions::default()
    };
    let out = c.place("ml-1", &text, &opts).expect("transport");
    assert_eq!(out.status, "ok");
    assert!(out.hpwl.is_finite() && out.hpwl > 0.0);
    assert!(out.iterations > 0);
    handle.shutdown();
    join.join().expect("no panic").expect("clean run");
}

#[test]
fn shutdown_frame_drains_and_stops_the_daemon() {
    let (handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let pong = c.ping().expect("pong");
    assert_eq!(pong.get("type").and_then(Json::as_str), Some("pong"));
    c.shutdown().expect("shutdown handshake");
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.connections, 1);
    // A fresh connect must now fail (the listener is gone).
    std::thread::sleep(Duration::from_millis(20));
    assert!(matches!(
        Client::connect(handle.addr()),
        Err(ClientError::Io(_)) | Err(ClientError::Disconnected)
    ));
}
