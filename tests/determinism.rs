//! Determinism matrix: the data-parallel runtime must produce bitwise
//! identical placements at every thread count.
//!
//! The `kraftwerk-par` chunking is fixed by input size — never by thread
//! count — and reductions combine partials in index order, so floating
//! point association is the same no matter how many workers execute the
//! chunks. This test drives a netlist large enough to engage every
//! parallel path (SpMV row chunks and density deposits both split at 2048
//! elements) through the full transformation loop under 1, 2, and 8
//! worker threads and compares the results bit for bit.

use kraftwerk::legalize::legalize;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{Netlist, Placement};
use kraftwerk::placer::{FieldSolverKind, IterationStats, KraftwerkConfig, PlacementSession};

/// Enough cells that the SpMV row loop (one row per movable cell) and the
/// density deposit (one rect per cell) both exceed their 2048-element
/// chunk size and actually fan out.
fn matrix_netlist() -> Netlist {
    generate(&SynthConfig::with_size("det-matrix", 2600, 3200, 24))
}

fn run_with_threads(nl: &Netlist, threads: usize) -> (Placement, Vec<IterationStats>) {
    kraftwerk::par::set_threads(threads);
    let mut session = PlacementSession::new(nl, KraftwerkConfig::standard());
    let stats = (0..6).map(|_| session.transform()).collect();
    (session.placement().clone(), stats)
}

#[test]
fn placement_is_bitwise_identical_at_every_thread_count() {
    let nl = matrix_netlist();
    let (p1, s1) = run_with_threads(&nl, 1);
    let (p2, s2) = run_with_threads(&nl, 2);
    let (p8, s8) = run_with_threads(&nl, 8);
    kraftwerk::par::set_threads(0);
    assert_eq!(s1, s2, "1 vs 2 threads: iteration stats differ");
    assert_eq!(s1, s8, "1 vs 8 threads: iteration stats differ");
    assert_eq!(p1, p2, "1 vs 2 threads: placements differ");
    assert_eq!(p1, p8, "1 vs 8 threads: placements differ");
}

fn run_solver_with_threads(
    nl: &Netlist,
    solver: FieldSolverKind,
    threads: usize,
) -> (Placement, Vec<IterationStats>) {
    kraftwerk::par::set_threads(threads);
    let config = KraftwerkConfig::standard().with_field_solver(solver);
    let mut session = PlacementSession::new(nl, config);
    let stats = (0..6).map(|_| session.transform()).collect();
    (session.placement().clone(), stats)
}

/// The spectral Poisson backend parallelizes its transform passes one
/// lane pair per chunk, so each lane's FFT is evaluated in full by a
/// single worker (and the inter-pass transpose blocks are a pure
/// function of the grid size), so the result cannot depend on how lanes
/// land on threads.
#[test]
fn spectral_placement_is_bitwise_identical_at_every_thread_count() {
    let nl = matrix_netlist();
    let (p1, s1) = run_solver_with_threads(&nl, FieldSolverKind::Spectral, 1);
    let (p2, s2) = run_solver_with_threads(&nl, FieldSolverKind::Spectral, 2);
    let (p8, s8) = run_solver_with_threads(&nl, FieldSolverKind::Spectral, 8);
    kraftwerk::par::set_threads(0);
    assert_eq!(s1, s2, "1 vs 2 threads: spectral iteration stats differ");
    assert_eq!(s1, s8, "1 vs 8 threads: spectral iteration stats differ");
    assert_eq!(p1, p2, "1 vs 2 threads: spectral placements differ");
    assert_eq!(p1, p8, "1 vs 8 threads: spectral placements differ");
}

/// The hybrid backend chains a spectral coarse solve (deterministic per
/// the test above) into multigrid V-cycles (deterministic per the
/// default-backend matrix), so the composition must be bitwise
/// thread-invariant too — the restriction/prolongation glue between the
/// two solvers chunks on grid geometry alone.
#[test]
fn hybrid_placement_is_bitwise_identical_at_every_thread_count() {
    let nl = matrix_netlist();
    let (p1, s1) = run_solver_with_threads(&nl, FieldSolverKind::Hybrid, 1);
    let (p2, s2) = run_solver_with_threads(&nl, FieldSolverKind::Hybrid, 2);
    let (p8, s8) = run_solver_with_threads(&nl, FieldSolverKind::Hybrid, 8);
    kraftwerk::par::set_threads(0);
    assert_eq!(s1, s2, "1 vs 2 threads: hybrid iteration stats differ");
    assert_eq!(s1, s8, "1 vs 8 threads: hybrid iteration stats differ");
    assert_eq!(p1, p2, "1 vs 2 threads: hybrid placements differ");
    assert_eq!(p1, p8, "1 vs 8 threads: hybrid placements differ");
}

fn run_degraded_with_threads(nl: &Netlist, threads: usize) -> (Placement, Vec<IterationStats>) {
    kraftwerk::par::set_threads(threads);
    let mut config = KraftwerkConfig::standard();
    // Persistent fault injection: every transformation diverges, the
    // watchdog trips, rolls back, and finally returns the checkpointed
    // best (see tests/robustness.rs). The whole trip/rollback/give-up
    // sequence must be as deterministic as the healthy path.
    config.force_scale_boost = 40.0;
    let result = kraftwerk::placer::GlobalPlacer::new(config)
        .try_place(nl)
        .expect("degraded run returns the checkpoint");
    assert!(result.health.recoveries >= 1, "fault injection must trip");
    (result.placement, result.stats)
}

#[test]
fn watchdog_tripping_run_is_bitwise_identical_at_every_thread_count() {
    let nl = matrix_netlist();
    let (p1, s1) = run_degraded_with_threads(&nl, 1);
    let (p2, s2) = run_degraded_with_threads(&nl, 2);
    let (p8, s8) = run_degraded_with_threads(&nl, 8);
    kraftwerk::par::set_threads(0);
    assert_eq!(s1, s2, "1 vs 2 threads: degraded-run stats differ");
    assert_eq!(s1, s8, "1 vs 8 threads: degraded-run stats differ");
    assert_eq!(p1, p2, "1 vs 2 threads: degraded placements differ");
    assert_eq!(p1, p8, "1 vs 8 threads: degraded placements differ");
}

fn run_multilevel_with_threads(nl: &Netlist, threads: usize) -> (Placement, Vec<IterationStats>) {
    kraftwerk::par::set_threads(threads);
    // A low coarsening threshold forces a real hierarchy (several
    // cluster/expand levels) even on this test-sized netlist; the default
    // multilevel config selects the bound-to-bound net model.
    let ml = kraftwerk::placer::MultilevelConfig {
        coarsest_movable: 400,
        ..kraftwerk::placer::MultilevelConfig::default()
    };
    let result = kraftwerk::placer::try_place_multilevel(nl, KraftwerkConfig::fast(), &ml)
        .expect("multilevel run places");
    (result.placement, result.stats)
}

/// The multilevel V-cycle composes clustering (sequential), per-level
/// B2B assemblies (extreme-pin scans with fixed tie-breaks) and the
/// shared transformation loop — every stage must stay bitwise identical
/// across worker counts for the flow to be reproducible.
#[test]
fn multilevel_b2b_placement_is_bitwise_identical_at_every_thread_count() {
    let nl = matrix_netlist();
    let (p1, s1) = run_multilevel_with_threads(&nl, 1);
    let (p2, s2) = run_multilevel_with_threads(&nl, 2);
    let (p8, s8) = run_multilevel_with_threads(&nl, 8);
    kraftwerk::par::set_threads(0);
    assert_eq!(s1, s2, "1 vs 2 threads: multilevel iteration stats differ");
    assert_eq!(s1, s8, "1 vs 8 threads: multilevel iteration stats differ");
    assert_eq!(p1, p2, "1 vs 2 threads: multilevel placements differ");
    assert_eq!(p1, p8, "1 vs 8 threads: multilevel placements differ");
}

#[test]
fn legalization_is_bitwise_identical_at_every_thread_count() {
    let nl = matrix_netlist();
    kraftwerk::par::set_threads(1);
    let one = legalize(&nl, &nl.initial_placement()).expect("row capacity");
    kraftwerk::par::set_threads(8);
    let eight = legalize(&nl, &nl.initial_placement()).expect("row capacity");
    kraftwerk::par::set_threads(0);
    assert_eq!(one, eight, "1 vs 8 threads: legalizations differ");
}
