//! Verifies the daemon's cross-request arena pooling with the counting
//! global allocator: the second job on a worker must reuse the first
//! job's scratch arena and allocate substantially less heap. Lives in
//! its own test binary so the allocator counters see only this scenario.

use kraftwerk::netlist::format::write_netlist;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::serve::{Client, PlaceOptions, ServeConfig, Server};
use kraftwerk::trace::alloc::{self, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator::system();

#[test]
fn second_job_reuses_pooled_arena_and_allocates_less() {
    let server = Server::bind(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let text = write_netlist(&generate(&SynthConfig::with_size("srv-arena", 500, 650, 8)));
    let opts = PlaceOptions {
        max_transformations: Some(10),
        ..PlaceOptions::default()
    };

    alloc::set_tracking(true);
    let base = alloc::stats();
    let first = c.place("arena-1", &text, &opts).expect("transport");
    let after_first = alloc::stats();
    let second = c.place("arena-2", &text, &opts).expect("transport");
    let after_second = alloc::stats();
    alloc::set_tracking(false);

    assert_eq!(first.status, "ok");
    assert_eq!(second.status, "ok");
    assert!(!first.arena_pooled, "first job starts with a cold arena");
    assert!(second.arena_pooled, "second job must reuse the pooled arena");
    // Identical placements: pooling must not change the result.
    assert_eq!(first.hpwl.to_bits(), second.hpwl.to_bits());

    let cold = after_first.since(&base).bytes_allocated;
    let warm = after_second.since(&after_first).bytes_allocated;
    assert!(
        warm * 2 < cold,
        "pooled arena must at least halve per-job heap traffic \
         (cold {cold} bytes, warm {warm} bytes)"
    );

    handle.shutdown();
    let summary = join.join().expect("no panic").expect("clean run");
    assert_eq!(summary.jobs_ok, 2);
    assert_eq!(summary.arena_reuses, 1);
}
