//! Integration: the text format round-trips a mid-flow state — save a
//! netlist and its global placement, reload, and finish the flow with
//! identical results.

use kraftwerk::legalize::{check_legality, legalize};
use kraftwerk::netlist::format::{read_netlist, read_placement, write_netlist, write_placement};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::metrics;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};

#[test]
fn save_and_resume_mid_flow() {
    let nl = generate(&SynthConfig::with_size("persist", 300, 380, 8));
    let global = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl);

    // Serialize both artifacts.
    let nl_text = write_netlist(&nl);
    let pl_text = write_placement(&nl, &global.placement);

    // Reload and verify equivalence.
    let nl2 = read_netlist(&nl_text).expect("parseable netlist");
    let pl2 = read_placement(&nl2, &pl_text).expect("parseable placement");
    assert_eq!(nl2.num_cells(), nl.num_cells());
    assert_eq!(nl2.num_nets(), nl.num_nets());
    assert!(
        (metrics::hpwl(&nl2, &pl2) - metrics::hpwl(&nl, &global.placement)).abs() < 1e-6
    );

    // Finishing the flow from the reloaded state works and is legal.
    let legal_a = legalize(&nl, &global.placement).expect("legal");
    let legal_b = legalize(&nl2, &pl2).expect("legal");
    assert!(check_legality(&nl2, &legal_b, 1e-6).is_legal());
    assert!(
        (metrics::hpwl(&nl, &legal_a) - metrics::hpwl(&nl2, &legal_b)).abs() < 1e-6,
        "resumed flow diverged"
    );
}

#[test]
fn serialization_is_stable() {
    let nl = generate(&SynthConfig::with_size("stable", 150, 190, 6));
    let once = write_netlist(&nl);
    let twice = write_netlist(&read_netlist(&once).expect("parseable"));
    assert_eq!(once, twice);
}
