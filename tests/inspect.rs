//! Golden-structure tests for `kraftwerk inspect` dashboards: a real
//! recorded fract run must render into well-formed HTML (balanced tags,
//! every referenced anchor resolving to an element id), and rendering
//! must be bitwise deterministic — the same telemetry produces the same
//! bytes at any thread-count setting, and re-recorded runs at different
//! thread counts produce structurally identical dashboards.
//!
//! The trace sink is a process-global, so tests that install one are
//! serialized through a local mutex (the harness runs tests on threads).

use kraftwerk::inspect;
use kraftwerk::netlist::synth::mcnc;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};
use kraftwerk::trace::{self, RunRecorder, Value};
use std::sync::{Arc, Mutex, MutexGuard};

static GLOBAL_SINK: Mutex<()> = Mutex::new(());

fn sink_lock() -> MutexGuard<'static, ()> {
    GLOBAL_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Places fract under a recorder with snapshots every 5 transformations
/// and returns the JSONL telemetry stream.
fn record_fract_run() -> String {
    let netlist = mcnc::by_name("fract");
    let recorder = Arc::new(RunRecorder::new());
    recorder.set_meta("netlist", Value::from("fract"));
    recorder.set_meta("mode", Value::from("fast"));
    trace::install(recorder.clone());
    let result =
        GlobalPlacer::new(KraftwerkConfig::fast().with_snapshot_every(5)).try_place(&netlist);
    trace::uninstall();
    result.expect("fract places cleanly");
    recorder.report().to_jsonl()
}

/// Every `id="..."` attribute value in the document.
fn element_ids(html: &str) -> Vec<String> {
    html.split("id=\"")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .map(str::to_owned)
        .collect()
}

#[test]
fn recorded_fract_run_renders_well_formed_html() {
    let _guard = sink_lock();
    let jsonl = record_fract_run();
    let html = inspect::render_report(&jsonl).expect("recorded telemetry renders");

    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.ends_with("</html>"));
    // Balanced structural tags. `<head` alone would also match
    // `<header>`, so count exact and attribute-carrying openings.
    for tag in ["html", "head", "body", "header", "nav", "section", "svg", "figure", "table"] {
        let open = html.matches(&format!("<{tag}>")).count()
            + html.matches(&format!("<{tag} ")).count();
        let close = html.matches(&format!("</{tag}>")).count();
        assert_eq!(open, close, "unbalanced <{tag}> in dashboard");
    }
    // Every internal link resolves to an element id.
    let ids = element_ids(&html);
    let anchors: Vec<&str> = html
        .split("href=\"#")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .collect();
    assert!(!anchors.is_empty(), "nav links missing");
    for anchor in anchors {
        assert!(
            ids.iter().any(|id| id == anchor),
            "dangling anchor #{anchor}"
        );
    }
    // The run is long enough for at least 3 density snapshots (capture
    // at iteration 1, 5, 10, ...), and the fixed charts are present.
    let density_maps = ids.iter().filter(|id| id.starts_with("heatmap-density-")).count();
    assert!(density_maps >= 3, "expected >= 3 density heatmaps, got {density_maps}");
    for id in ["chart-hpwl", "chart-density", "chart-cg", "phase-breakdown", "watchdog-timeline"] {
        assert!(ids.iter().any(|have| have == id), "missing chart id {id}");
    }
    assert!(
        ids.iter().any(|id| id.starts_with("hist-place-")),
        "missing histogram charts"
    );
}

#[test]
fn rendering_is_bitwise_identical_across_thread_counts() {
    let _guard = sink_lock();
    let jsonl = record_fract_run();
    // The renderer itself must not depend on the parallel runtime: the
    // same telemetry bytes render identically at any thread setting.
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        kraftwerk::par::set_threads(threads);
        outputs.push(inspect::render_report(&jsonl).expect("renders"));
    }
    kraftwerk::par::set_threads(0);
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads changed the dashboard bytes");
    assert_eq!(outputs[1], outputs[2], "2 vs 8 threads changed the dashboard bytes");

    // And the placement pipeline feeding it is deterministic too:
    // re-recording at different thread counts may only differ in wall
    // times, never in structure (chart ids, snapshot count, curves).
    let mut id_sets = Vec::new();
    for threads in [1usize, 2, 8] {
        kraftwerk::par::set_threads(threads);
        let run = record_fract_run();
        let html = inspect::render_report(&run).expect("renders");
        id_sets.push(element_ids(&html));
    }
    kraftwerk::par::set_threads(0);
    assert_eq!(id_sets[0], id_sets[1], "1 vs 2 threads changed dashboard structure");
    assert_eq!(id_sets[1], id_sets[2], "2 vs 8 threads changed dashboard structure");
}

/// Golden-schema round trip: a real recorded run must surface **every**
/// record kind the trace layer can emit — iteration, meta, snapshot,
/// histogram, convergence, alloc, utilization, timeline — through the
/// inspect reader, from both the JSONL stream and the `--report`
/// summary, with the resource numbers intact.
#[test]
fn every_record_kind_round_trips_through_the_reader() {
    let _guard = sink_lock();
    let netlist = mcnc::by_name("fract");
    let recorder = Arc::new(RunRecorder::new());
    recorder.set_meta("netlist", Value::from("fract"));
    recorder.set_meta("mode", Value::from("fast"));
    // Heap accounting on: the test binary has no counting allocator
    // installed, so the deltas are zero — the schema still flows.
    trace::alloc::set_tracking(true);
    trace::install(recorder.clone());
    let result =
        GlobalPlacer::new(KraftwerkConfig::fast().with_snapshot_every(5)).try_place(&netlist);
    trace::uninstall();
    trace::alloc::set_tracking(false);
    result.expect("fract places cleanly");
    let report = recorder.report();
    assert!(!report.convergence.is_empty(), "no solver convergence recorded");
    assert!(!report.alloc.is_empty(), "no alloc stats recorded");
    assert!(!report.utilization.is_empty(), "no utilization recorded");
    assert!(!report.snapshots.is_empty(), "no snapshots recorded");
    assert!(!report.histograms.is_empty(), "no histograms recorded");

    let check = |run: &inspect::RunData, source: &str| {
        assert_eq!(run.iterations.len(), report.iterations.len(), "{source}: iterations");
        assert_eq!(run.meta_value("netlist"), Some("fract"), "{source}: meta");
        assert_eq!(run.snapshots.len(), report.snapshots.len(), "{source}: snapshots");
        assert_eq!(run.histograms.len(), report.histograms.len(), "{source}: histograms");
        assert_eq!(run.convergence.len(), report.convergence.len(), "{source}: convergence");
        for (parsed, recorded) in run.convergence.iter().zip(&report.convergence) {
            assert_eq!(parsed.solver, recorded.solver, "{source}: solver tag");
            assert_eq!(parsed.iteration, recorded.iteration, "{source}: solve iteration");
        }
        let cg = run.convergence_of("cg");
        assert!(!cg.is_empty(), "{source}: no cg records");
        assert!(!cg[0].curve.is_empty(), "{source}: cg residual curve lost");
        assert!(
            cg[0].metrics.iter().any(|(k, v)| k == "iterations" && *v >= 1.0),
            "{source}: cg iteration count lost"
        );
        assert_eq!(run.alloc.len(), report.alloc.len(), "{source}: alloc");
        for (parsed, recorded) in run.alloc.iter().zip(&report.alloc) {
            assert_eq!(parsed.phase, recorded.phase, "{source}: alloc phase");
            assert_eq!(parsed.samples, recorded.samples, "{source}: alloc samples");
            assert_eq!(parsed.allocs, recorded.allocs, "{source}: alloc count");
            assert_eq!(parsed.bytes, recorded.bytes, "{source}: alloc bytes");
            assert_eq!(parsed.peak_bytes, recorded.peak_bytes, "{source}: peak bytes");
        }
        assert_eq!(run.utilization.len(), report.utilization.len(), "{source}: utilization");
        for (parsed, recorded) in run.utilization.iter().zip(&report.utilization) {
            assert_eq!(parsed.span, recorded.span, "{source}: span name");
            assert_eq!(parsed.samples, recorded.samples, "{source}: span samples");
            assert_eq!(parsed.chunks, recorded.chunks, "{source}: span chunks");
            assert_eq!(parsed.threads, recorded.threads, "{source}: span threads");
            // The JSON number codec round-trips f64 exactly (shortest
            // representation), so equality is exact, not approximate.
            assert_eq!(parsed.wall_s, recorded.wall_seconds, "{source}: span wall");
            assert_eq!(parsed.busy_s, recorded.busy_seconds, "{source}: span busy");
            assert_eq!(parsed.efficiency, recorded.efficiency(), "{source}: efficiency");
        }
    };

    // A synthetic watchdog line rides along with the stream so the
    // timeline kind is covered even on a clean run.
    let mut jsonl = report.to_jsonl();
    jsonl.push_str(
        "{\"type\":\"watchdog\",\"iteration\":1,\"reason\":\"synthetic\",\"action\":\"rollback\"}\n",
    );
    let from_stream = inspect::parse_run(&jsonl).expect("stream parses");
    check(&from_stream, "jsonl");
    assert_eq!(from_stream.timeline.len(), 1, "jsonl: watchdog line lost");
    assert_eq!(from_stream.timeline[0].action, "rollback");

    let from_summary = inspect::parse_run(&report.to_json()).expect("summary parses");
    check(&from_summary, "summary");

    // Both artifacts drive the Perfetto exporter and the comparison
    // renderer without loss of the resource sections.
    let trace_json = inspect::render_perfetto(&from_stream);
    assert!(trace_json.contains("\"traceEvents\""));
    let cmp = inspect::render_comparison(&[
        ("stream".to_string(), from_stream),
        ("summary".to_string(), from_summary),
    ]);
    assert!(cmp.contains("<section id=\"utilization\">"));
}

#[test]
fn summary_and_stream_render_equivalent_structure() {
    let _guard = sink_lock();
    let netlist = mcnc::by_name("fract");
    let recorder = Arc::new(RunRecorder::new());
    recorder.set_meta("netlist", Value::from("fract"));
    trace::install(recorder.clone());
    let result =
        GlobalPlacer::new(KraftwerkConfig::fast().with_snapshot_every(5)).try_place(&netlist);
    trace::uninstall();
    result.expect("fract places cleanly");
    let report = recorder.report();
    let from_stream = inspect::render_report(&report.to_jsonl()).expect("stream renders");
    let from_summary = inspect::render_report(&report.to_json()).expect("summary renders");
    // Same charts from either artifact; wall-time text may differ (the
    // summary carries the recorder's cumulative profile, the stream an
    // aggregate of per-iteration phases), structure may not.
    assert_eq!(element_ids(&from_stream), element_ids(&from_summary));
}
