//! Golden-structure tests for `kraftwerk inspect` dashboards: a real
//! recorded fract run must render into well-formed HTML (balanced tags,
//! every referenced anchor resolving to an element id), and rendering
//! must be bitwise deterministic — the same telemetry produces the same
//! bytes at any thread-count setting, and re-recorded runs at different
//! thread counts produce structurally identical dashboards.
//!
//! The trace sink is a process-global, so tests that install one are
//! serialized through a local mutex (the harness runs tests on threads).

use kraftwerk::inspect;
use kraftwerk::netlist::synth::mcnc;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};
use kraftwerk::trace::{self, RunRecorder, Value};
use std::sync::{Arc, Mutex, MutexGuard};

static GLOBAL_SINK: Mutex<()> = Mutex::new(());

fn sink_lock() -> MutexGuard<'static, ()> {
    GLOBAL_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Places fract under a recorder with snapshots every 5 transformations
/// and returns the JSONL telemetry stream.
fn record_fract_run() -> String {
    let netlist = mcnc::by_name("fract");
    let recorder = Arc::new(RunRecorder::new());
    recorder.set_meta("netlist", Value::from("fract"));
    recorder.set_meta("mode", Value::from("fast"));
    trace::install(recorder.clone());
    let result =
        GlobalPlacer::new(KraftwerkConfig::fast().with_snapshot_every(5)).try_place(&netlist);
    trace::uninstall();
    result.expect("fract places cleanly");
    recorder.report().to_jsonl()
}

/// Every `id="..."` attribute value in the document.
fn element_ids(html: &str) -> Vec<String> {
    html.split("id=\"")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .map(str::to_owned)
        .collect()
}

#[test]
fn recorded_fract_run_renders_well_formed_html() {
    let _guard = sink_lock();
    let jsonl = record_fract_run();
    let html = inspect::render_report(&jsonl).expect("recorded telemetry renders");

    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.ends_with("</html>"));
    // Balanced structural tags. `<head` alone would also match
    // `<header>`, so count exact and attribute-carrying openings.
    for tag in ["html", "head", "body", "header", "nav", "section", "svg", "figure", "table"] {
        let open = html.matches(&format!("<{tag}>")).count()
            + html.matches(&format!("<{tag} ")).count();
        let close = html.matches(&format!("</{tag}>")).count();
        assert_eq!(open, close, "unbalanced <{tag}> in dashboard");
    }
    // Every internal link resolves to an element id.
    let ids = element_ids(&html);
    let anchors: Vec<&str> = html
        .split("href=\"#")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .collect();
    assert!(!anchors.is_empty(), "nav links missing");
    for anchor in anchors {
        assert!(
            ids.iter().any(|id| id == anchor),
            "dangling anchor #{anchor}"
        );
    }
    // The run is long enough for at least 3 density snapshots (capture
    // at iteration 1, 5, 10, ...), and the fixed charts are present.
    let density_maps = ids.iter().filter(|id| id.starts_with("heatmap-density-")).count();
    assert!(density_maps >= 3, "expected >= 3 density heatmaps, got {density_maps}");
    for id in ["chart-hpwl", "chart-density", "chart-cg", "phase-breakdown", "watchdog-timeline"] {
        assert!(ids.iter().any(|have| have == id), "missing chart id {id}");
    }
    assert!(
        ids.iter().any(|id| id.starts_with("hist-place-")),
        "missing histogram charts"
    );
}

#[test]
fn rendering_is_bitwise_identical_across_thread_counts() {
    let _guard = sink_lock();
    let jsonl = record_fract_run();
    // The renderer itself must not depend on the parallel runtime: the
    // same telemetry bytes render identically at any thread setting.
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        kraftwerk::par::set_threads(threads);
        outputs.push(inspect::render_report(&jsonl).expect("renders"));
    }
    kraftwerk::par::set_threads(0);
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads changed the dashboard bytes");
    assert_eq!(outputs[1], outputs[2], "2 vs 8 threads changed the dashboard bytes");

    // And the placement pipeline feeding it is deterministic too:
    // re-recording at different thread counts may only differ in wall
    // times, never in structure (chart ids, snapshot count, curves).
    let mut id_sets = Vec::new();
    for threads in [1usize, 2, 8] {
        kraftwerk::par::set_threads(threads);
        let run = record_fract_run();
        let html = inspect::render_report(&run).expect("renders");
        id_sets.push(element_ids(&html));
    }
    kraftwerk::par::set_threads(0);
    assert_eq!(id_sets[0], id_sets[1], "1 vs 2 threads changed dashboard structure");
    assert_eq!(id_sets[1], id_sets[2], "2 vs 8 threads changed dashboard structure");
}

#[test]
fn summary_and_stream_render_equivalent_structure() {
    let _guard = sink_lock();
    let netlist = mcnc::by_name("fract");
    let recorder = Arc::new(RunRecorder::new());
    recorder.set_meta("netlist", Value::from("fract"));
    trace::install(recorder.clone());
    let result =
        GlobalPlacer::new(KraftwerkConfig::fast().with_snapshot_every(5)).try_place(&netlist);
    trace::uninstall();
    result.expect("fract places cleanly");
    let report = recorder.report();
    let from_stream = inspect::render_report(&report.to_jsonl()).expect("stream renders");
    let from_summary = inspect::render_report(&report.to_json()).expect("summary renders");
    // Same charts from either artifact; wall-time text may differ (the
    // summary carries the recorder's cumulative profile, the stream an
    // aggregate of per-iteration phases), structure may not.
    assert_eq!(element_ids(&from_stream), element_ids(&from_summary));
}
