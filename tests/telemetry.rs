//! Integration tests for the run-telemetry layer: a [`RunRecorder`]
//! installed around a real placement must see exactly one record per
//! placement transformation, with strictly increasing iteration numbers,
//! and the JSONL export must parse with the crate's own JSON parser.
//!
//! The trace sink is a process-global, so tests that install one are
//! serialized through a local mutex (the harness runs tests on threads).

use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::placer::{KraftwerkConfig, PlacementSession};
use kraftwerk::trace::{self, json, RunRecorder, Value};
use std::sync::{Arc, Mutex, MutexGuard};

static GLOBAL_SINK: Mutex<()> = Mutex::new(());

fn sink_lock() -> MutexGuard<'static, ()> {
    GLOBAL_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `transformations` placement transformations with a recorder
/// installed and returns the resulting report.
fn record_run(transformations: usize) -> (trace::RunReport, usize) {
    let netlist = generate(&SynthConfig::with_size("telemetry", 150, 190, 6));
    let recorder = Arc::new(RunRecorder::new());
    recorder.set_meta("netlist", Value::from(netlist.name()));
    trace::install(recorder.clone());
    let mut session = PlacementSession::new(&netlist, KraftwerkConfig::fast());
    let mut done = 0;
    for _ in 0..transformations {
        session.transform();
        done += 1;
        if session.is_converged() {
            break;
        }
    }
    trace::uninstall();
    (recorder.report(), done)
}

#[test]
fn one_record_per_transformation_with_increasing_iterations() {
    let _guard = sink_lock();
    let (report, done) = record_run(10);
    assert_eq!(report.iterations.len(), done);
    for pair in report.iterations.windows(2) {
        assert!(
            pair[1].iteration() > pair[0].iteration(),
            "iteration numbers must strictly increase: {} then {}",
            pair[0].iteration(),
            pair[1].iteration()
        );
    }
    for record in &report.iterations {
        assert!(record.get("hpwl").and_then(Value::as_f64).is_some());
        assert!(record.get("cg_iterations").and_then(Value::as_u64).is_some());
        assert!(
            !record.phases.is_empty(),
            "each transformation should report phase timings"
        );
        // The `place.*` phases are disjoint sub-spans of the
        // transformation, so their total cannot exceed the recorded wall
        // time by more than noise. (Nested solver spans like
        // `multigrid.solve` overlap `place.field_solve` and would double
        // count, so they are excluded from the sum.)
        let wall = record.get("wall_s").and_then(Value::as_f64).unwrap();
        let top_level: f64 = record
            .phases
            .iter()
            .filter(|(name, _)| name.starts_with("place."))
            .map(|(_, s)| s)
            .sum();
        assert!(
            top_level <= wall * 1.5 + 1e-3,
            "disjoint place.* phases ({top_level:.6}s) exceed wall time ({wall:.6}s)"
        );
    }
}

#[test]
fn jsonl_export_parses_line_by_line() {
    let _guard = sink_lock();
    let (report, done) = record_run(8);
    let jsonl = report.to_jsonl();
    // Iteration records carry no "type" field; typed lines (histograms,
    // snapshots, watchdog timeline events) may interleave with them.
    let mut iteration_lines = 0usize;
    let mut typed_lines = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        let parsed = json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}"));
        if let Some(kind) = parsed.get("type").and_then(json::Json::as_str) {
            assert!(!kind.is_empty(), "line {i} has an empty type tag");
            typed_lines += 1;
            continue;
        }
        iteration_lines += 1;
        let iteration = parsed
            .get("iteration")
            .and_then(json::Json::as_f64)
            .unwrap_or_else(|| panic!("line {i} missing iteration"));
        assert_eq!(iteration as usize, iteration_lines);
        assert!(parsed.get("hpwl").and_then(json::Json::as_f64).is_some());
        assert!(parsed
            .get("phases")
            .and_then(json::Json::as_object)
            .is_some_and(|phases| !phases.is_empty()));
    }
    assert_eq!(iteration_lines, done, "one iteration record per transformation");
    // The session flushes per-iteration histograms whenever tracing is
    // on, so a traced run always carries some typed telemetry too.
    assert!(typed_lines > 0, "expected histogram lines in the export");
}

#[test]
fn report_summary_covers_the_run() {
    let _guard = sink_lock();
    let (report, done) = record_run(6);
    assert!(done > 0);
    let summary = json::parse(&report.to_json()).expect("summary JSON parses");
    assert_eq!(
        summary.get("iterations").and_then(json::Json::as_f64),
        Some(done as f64)
    );
    assert_eq!(
        summary
            .get("meta")
            .and_then(|m| m.get("netlist"))
            .and_then(json::Json::as_str),
        Some("telemetry")
    );
    // The cumulative profile knows the phases instrumented in the core
    // transformation loop.
    let profile: Vec<&str> = report.profile.iter().map(|p| p.name.as_str()).collect();
    for phase in ["place.density_map", "place.field_solve", "place.solve_x"] {
        assert!(profile.contains(&phase), "profile missing {phase}: {profile:?}");
    }
    // CG solves inside the transformations feed the counters.
    assert!(report
        .counters
        .iter()
        .any(|(name, value)| name == "cg.iterations" && *value > 0));
}

#[test]
fn disabled_tracing_records_nothing_and_costs_no_events() {
    let _guard = sink_lock();
    trace::uninstall();
    let netlist = generate(&SynthConfig::with_size("telemetry_off", 120, 150, 5));
    let mut session = PlacementSession::new(&netlist, KraftwerkConfig::fast());
    session.transform();
    assert!(!trace::enabled());
    // Installing a recorder afterwards must start from a clean slate.
    let recorder = Arc::new(RunRecorder::new());
    trace::install(recorder.clone());
    trace::uninstall();
    let report = recorder.report();
    assert!(report.iterations.is_empty());
    assert!(report.profile.is_empty());
}
