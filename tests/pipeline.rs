//! Cross-crate integration: the full place → legalize → refine pipeline
//! on MCNC-shaped circuits, compared against both baseline placers.

use kraftwerk::baselines::{AnnealingConfig, AnnealingPlacer, GordianConfig, GordianPlacer};
use kraftwerk::legalize::{check_legality, legalize, refine};
use kraftwerk::netlist::synth::{generate, mcnc, SynthConfig};
use kraftwerk::netlist::{metrics, Netlist, Placement};
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig, NetModel};

fn finish(netlist: &Netlist, global: &Placement) -> Placement {
    let mut legal = legalize(netlist, global).expect("legalizable");
    refine(netlist, &mut legal, 2);
    legal
}

#[test]
fn kraftwerk_pipeline_is_legal_and_beats_scatter() {
    let nl = generate(&SynthConfig::with_size("pipe", 600, 720, 12));
    let global = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl);
    let legal = finish(&nl, &global.placement);
    assert!(check_legality(&nl, &legal, 1e-6).is_legal());

    // Scatter reference: cells placed round-robin over rows.
    let mut scatter = nl.initial_placement();
    let rows = nl.rows();
    let movable: Vec<_> = nl.movable_cells().map(|(id, _)| id).collect();
    for (i, &id) in movable.iter().enumerate() {
        let row = rows[i % rows.len()];
        let frac = (i / rows.len()) as f64 / (movable.len() / rows.len()).max(1) as f64;
        scatter.set_position(
            id,
            kraftwerk::geom::Point::new(row.x_lo + frac * row.width(), row.center_y()),
        );
    }
    let ours = metrics::hpwl(&nl, &legal);
    let scattered = metrics::hpwl(&nl, &scatter);
    assert!(
        ours < 0.5 * scattered,
        "pipeline {ours:.0} should be well under scatter {scattered:.0}"
    );
}

#[test]
fn all_three_placers_complete_the_pipeline_on_fract() {
    // The smallest Table 1 circuit through all three flows.
    let nl = mcnc::by_name("fract");

    let kw = finish(
        &nl,
        &GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl).placement,
    );
    assert!(check_legality(&nl, &kw, 1e-6).is_legal());

    let (sa_global, _) = AnnealingPlacer::new(AnnealingConfig::default()).place(&nl);
    let sa = finish(&nl, &sa_global);
    assert!(check_legality(&nl, &sa, 1e-6).is_legal());

    let gq = finish(&nl, &GordianPlacer::new(GordianConfig::default()).place(&nl));
    assert!(check_legality(&nl, &gq, 1e-6).is_legal());

    // All three produce comparable-order wire length; none is broken.
    let (a, b, c) = (
        metrics::hpwl(&nl, &kw),
        metrics::hpwl(&nl, &sa),
        metrics::hpwl(&nl, &gq),
    );
    let max = a.max(b).max(c);
    let min = a.min(b).min(c);
    assert!(max < 4.0 * min, "wild spread: kw {a:.0}, sa {b:.0}, gordian {c:.0}");
}

#[test]
fn pipeline_handles_the_fast_mode() {
    let nl = generate(&SynthConfig::with_size("pipe_fast", 500, 620, 10));
    let global = GlobalPlacer::new(KraftwerkConfig::fast()).place(&nl);
    let legal = finish(&nl, &global.placement);
    assert!(check_legality(&nl, &legal, 1e-6).is_legal());
}

#[test]
fn b2b_and_clique_agree_on_mcnc_wirelength() {
    // The bound-to-bound model approximates the same HPWL objective the
    // clique model does, so end-to-end legalized wire length on the MCNC
    // stand-ins must land in the same ballpark — B2B no more than 20%
    // worse and not suspiciously shorter than half the clique result.
    for name in ["fract", "primary1"] {
        let nl = mcnc::by_name(name);
        let run = |model: NetModel| {
            let mut cfg = KraftwerkConfig::standard();
            cfg.net_model = model;
            let global = GlobalPlacer::new(cfg).place(&nl);
            metrics::hpwl(&nl, &finish(&nl, &global.placement))
        };
        let clique = run(NetModel::Clique);
        let b2b = run(NetModel::B2B);
        assert!(
            b2b < 1.2 * clique && b2b > 0.5 * clique,
            "{name}: b2b {b2b:.0} vs clique {clique:.0}"
        );
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let nl = generate(&SynthConfig::with_size("pipe_det", 300, 380, 8));
    let one = finish(
        &nl,
        &GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl).placement,
    );
    let two = finish(
        &nl,
        &GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl).placement,
    );
    assert_eq!(one, two);
}
