//! Small-scale executable versions of the paper's qualitative claims —
//! the statements section 5 and 7 make without a table. Each test states
//! the claim it covers. (The quantitative tables live in the
//! `kraftwerk-bench` binaries; these run in the normal test suite on
//! small circuits.)

use kraftwerk::congestion::{demand_for_session, peak, thermal_map};
use kraftwerk::floorplan::{is_legal_mixed, place_mixed, MixedPlaceConfig};
use kraftwerk::legalize::{legalize, refine};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, CellKind};
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig, PlacementSession};
use kraftwerk::timing::{meet_requirements, DelayModel, Sta};

/// Claim (section 2.2): "the introduction of forces does not restrict the
/// solution space, i.e. any given placement can fulfill equation (3) if
/// the additional forces are chosen appropriately." The session realizes
/// this through `resume`: any placement is a fixed point until density
/// forces demand otherwise, so a resumed converged placement barely moves.
#[test]
fn any_placement_is_an_equilibrium_under_suitable_forces() {
    let nl = generate(&SynthConfig::with_size("claim_eq", 250, 310, 8));
    let placer = GlobalPlacer::new(KraftwerkConfig::standard());
    let converged = placer.place(&nl).placement;
    let resumed = placer.place_incremental(&nl, converged.clone()).placement;
    let moved = converged.max_displacement(&resumed);
    assert!(
        moved < 0.1 * nl.core_region().half_perimeter(),
        "resumed equilibrium moved {moved}"
    );
}

/// Claim (section 5): "our algorithm is the first one which is able to
/// handle large mixed block/cell placement problems without treating
/// blocks and cells differently" — the same config places a pure
/// standard-cell design and a blocks-included design, and the mixed flow
/// ends legal.
#[test]
fn blocks_and_cells_share_one_algorithm() {
    let nl = generate(&SynthConfig::with_size("claim_mixed", 220, 280, 10).blocks(3));
    let result = place_mixed(&nl, &MixedPlaceConfig::default()).expect("mixed flow");
    assert!(is_legal_mixed(&nl, &result.legal, 1e-6));
    // Blocks ended inside the core, spread apart (not piled at the center).
    let blocks: Vec<_> = nl
        .cells()
        .filter(|(_, c)| c.kind() == CellKind::Block)
        .map(|(id, _)| result.legal.position(id))
        .collect();
    for (i, a) in blocks.iter().enumerate() {
        for b in &blocks[i + 1..] {
            assert!(a.distance(*b) > 1.0, "blocks piled: {a} vs {b}");
        }
    }
}

/// Claim (section 5): the meet-requirements flow "guarantees that the
/// timing requirements are precisely met if it is possible at all" and
/// produces a trade-off curve trading area for timing.
#[test]
fn meeting_requirements_is_precise_and_costs_area() {
    let nl = generate(&SynthConfig::with_size("claim_meet", 350, 440, 10));
    let model = DelayModel::default();
    let sta = Sta::new(&nl, model).expect("acyclic");
    let cfg = KraftwerkConfig::standard();
    let base = GlobalPlacer::new(cfg.clone()).place(&nl);
    let base_delay = sta.analyze(&base.placement).max_delay;
    let base_hpwl = metrics::hpwl(&nl, &base.placement);
    let requirement = base_delay * 0.9;
    let result = meet_requirements(&nl, model, cfg, requirement, 60).expect("acyclic");
    assert!(result.met);
    // Precisely met: verified on the returned placement itself.
    assert!(sta.analyze(&result.placement).max_delay <= requirement + 1e-9);
    // The area (wire length) cost is visible but bounded.
    let final_hpwl = metrics::hpwl(&nl, &result.placement);
    assert!(final_hpwl < 2.0 * base_hpwl, "area cost exploded: {final_hpwl} vs {base_hpwl}");
}

/// Claim (section 5): "by replacing the congestion map with a heat map we
/// can use the same approach to avoid hot spots in the layout."
#[test]
fn heat_map_injection_flattens_a_hot_spot() {
    let base = generate(&SynthConfig::with_size("claim_heat", 400, 500, 10));
    let n = base.num_movable();
    let nl = base.with_powers(|id, cell| {
        if (n / 4..n / 4 + n / 8).contains(&id.index()) {
            cell.power() * 30.0
        } else {
            cell.power()
        }
    });
    let cfg = KraftwerkConfig::standard();
    let (nx, ny) = PlacementSession::new(&nl, cfg.clone()).grid_dims();
    let plain = GlobalPlacer::new(cfg.clone()).place(&nl);
    let plain_peak = peak(&thermal_map(&nl, &plain.placement, nx, ny));

    let mut session = PlacementSession::new(&nl, cfg.clone());
    for _ in 0..cfg.max_transformations {
        let t = thermal_map(&nl, session.placement(), nx, ny);
        session.set_demand_map(demand_for_session(&t), 0.8);
        session.transform();
        if session.is_converged() {
            break;
        }
    }
    let driven_peak = peak(&thermal_map(&nl, session.placement(), nx, ny));
    assert!(
        driven_peak < plain_peak,
        "heat-driven peak {driven_peak:.3} should beat plain {plain_peak:.3}"
    );
}

/// Claim (section 6.1): the fast mode trades single-digit-percent wire
/// length for a substantially cheaper run (measured here as fewer or
/// equal transformations and never worse than a generous envelope).
#[test]
fn fast_mode_quality_stays_in_a_sane_envelope() {
    let nl = generate(&SynthConfig::with_size("claim_fast", 600, 720, 12));
    let std_run = GlobalPlacer::new(KraftwerkConfig::standard()).place(&nl);
    let fast_run = GlobalPlacer::new(KraftwerkConfig::fast()).place(&nl);
    let std_legal = {
        let mut p = legalize(&nl, &std_run.placement).expect("legal");
        refine(&nl, &mut p, 2);
        metrics::hpwl(&nl, &p)
    };
    let fast_legal = {
        let mut p = legalize(&nl, &fast_run.placement).expect("legal");
        refine(&nl, &mut p, 2);
        metrics::hpwl(&nl, &p)
    };
    assert!(
        fast_legal < 1.45 * std_legal,
        "fast {fast_legal:.0} vs standard {std_legal:.0}"
    );
    assert!(fast_run.iterations() <= std_run.iterations());
}

/// Claim (section 4.2): "each iteration makes the distribution of the
/// cells more even" — peak density decreases from start to converged end.
#[test]
fn transformations_flatten_the_density() {
    let nl = generate(&SynthConfig::with_size("claim_flat", 400, 500, 10));
    let cfg = KraftwerkConfig::standard();
    let mut session = PlacementSession::new(&nl, cfg.clone());
    let first = session.transform();
    let mut last = first.clone();
    while session.iteration() < cfg.max_transformations {
        last = session.transform();
        if session.is_converged() || session.is_stalled() {
            break;
        }
    }
    assert!(
        last.peak_density < 0.5 * first.peak_density.max(2.0),
        "peak density {} -> {}",
        first.peak_density,
        last.peak_density
    );
    assert!(last.empty_square_area <= first.empty_square_area);
}
