//! `kraftwerk` — command-line placement driver.
//!
//! ```text
//! kraftwerk place      <netlist> [-o placement.pl] [--fast] [--multilevel] [--svg out.svg]
//!                                [--poisson multigrid|spectral|hybrid|direct] [--threads N]
//!                                [--trace [run.jsonl]] [--report report.json]
//!                                [--snapshot-every N] [--k F] [--profile]
//!                                [--alloc-stats] [--perfetto trace.json] [-v|--verbose] [-q|--quiet]
//! kraftwerk inspect    <telemetry>... [-o report.html] [--perfetto trace.json] [--service]
//! kraftwerk bench      [--json] [--compare baseline.json] [-o out.json] [--max-cells N] [--modes a,b]
//!                      [--hpwl-tol PCT] [--wall-tol PCT]
//! kraftwerk timing     <netlist> [--requirement NS] [-v|--verbose] [-q|--quiet]
//! kraftwerk gen        <name> <cells> <nets> <rows> [--seed N] [--blocks N] [-o netlist.kw]
//! kraftwerk stats      <netlist>
//! kraftwerk check      <netlist> <placement>
//! kraftwerk route      <netlist> <placement>
//! kraftwerk bookshelf  <netlist> [<placement>] [-o dir]
//! ```
//!
//! Netlists use the text format of `kraftwerk::netlist::format` (see the
//! `gen` subcommand to create one).
//!
//! `place` telemetry: `--trace` enables recording (with a path it also
//! writes one JSON record per placement transformation as JSONL),
//! `--report` the end-of-run summary with the cumulative phase profile
//! and the full embedded record stream, `--snapshot-every N` captures
//! downsampled density/potential fields and cell positions every N
//! transformations, `--profile` prints the phase profile as a table, and
//! `-v` streams per-iteration progress to stderr. See the README
//! "Observability" and "Inspecting runs" sections for the record schema.
//!
//! `place --alloc-stats` switches the counting global allocator's
//! accounting on and prints the per-phase heap table after the run (the
//! arena claim as a runtime-verified metric); with `--trace`/`--report`
//! the same per-phase deltas land in the telemetry as `alloc` records.
//! `place --perfetto trace.json` additionally exports the run as a
//! Chrome trace-event document that loads in Perfetto.
//!
//! `inspect` turns either telemetry artifact (the `--trace` JSONL stream
//! or the `--report` summary) into a self-contained HTML dashboard.
//! With two or more inputs it renders a cross-run comparison instead
//! (overlaid convergence curves, phase deltas, peak memory, parallel
//! efficiency); with `--perfetto <json>` it exports the Chrome
//! trace-event document instead of (or alongside `-o`) the dashboard.
//! `bench --json` measures the Table 1 subset; `bench --compare`
//! re-measures against a committed `BENCH_place.json` baseline and exits
//! non-zero on an HPWL regression beyond `--hpwl-tol` (default 2%);
//! wall-clock drift beyond `--wall-tol` is warn-only.
//!
//! `--threads N` sets the worker-thread count of the data-parallel
//! runtime (`0` or absent: the `KRAFTWERK_THREADS` environment variable,
//! then the machine's parallelism). The placement is bitwise identical at
//! every setting — see the README "Parallelism & determinism" section.
//!
//! Every failure prints a one-line `error:` diagnostic to stderr — never a
//! panic backtrace — and exits with the stage's code from the
//! `KraftwerkError` taxonomy: `2` usage, `3` I/O, `4` parse, `5`
//! build/validation, `6` solver/divergence, `7` legalization, `8`
//! floorplan, `9` timing (`1` is anything uncategorized). `place
//! --force-scale <f>` multiplies the force scale (fault injection for the
//! watchdog — see the README "Robustness & recovery" section).

use kraftwerk::geom::svg::SvgCanvas;
use kraftwerk::legalize::{check_legality, legalize, refine};
use kraftwerk::netlist::format::{read_netlist, read_placement, write_netlist, write_placement};
use kraftwerk::netlist::stats::NetlistStats;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, CellKind, Netlist, Placement};
use kraftwerk::placer::{FieldSolverKind, GlobalPlacer, KraftwerkConfig, KraftwerkError};
use kraftwerk::timing::{meet_requirements, optimize_timing_legalized, DelayModel, Sta};
use std::process::ExitCode;

/// The counting allocator behind `place --alloc-stats`. It forwards
/// every request to the system allocator and its counters stay dormant
/// (one relaxed atomic load per allocation) until tracking is switched
/// on, so the untracked paths pay nothing measurable.
#[global_allocator]
static GLOBAL: kraftwerk::trace::alloc::CountingAllocator =
    kraftwerk::trace::alloc::CountingAllocator::system();

/// A rendered diagnostic plus the process exit code it maps to.
struct CliError {
    message: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, code: 1 }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            message: message.to_string(),
            code: 1,
        }
    }
}

impl From<KraftwerkError> for CliError {
    fn from(e: KraftwerkError) -> Self {
        CliError {
            message: e.to_string(),
            code: e.exit_code() as u8,
        }
    }
}

impl CliError {
    /// Wraps a pipeline error with the file it came from.
    fn at(path: &str, e: KraftwerkError) -> Self {
        CliError {
            message: format!("{path}: {e}"),
            code: e.exit_code() as u8,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  kraftwerk place     <netlist> [-o <placement>] [--fast] [--multilevel] [--svg <file>]\n                      [--poisson <multigrid|spectral|hybrid|direct>] [--threads <n>]\n                      [--trace [<jsonl>]] [--report <json>] [--profile]\n                      [--alloc-stats] [--perfetto <json>]\n                      [--snapshot-every <n>] [--k <f>] [--force-scale <f>] [-v|--verbose] [-q|--quiet]\n  kraftwerk serve     [--addr <host:port>] [--workers <n>] [--queue-cap <n>] [--deadline <s>]\n                      [--journal-dir <dir>] [--max-bytes <n>] [--no-retry]\n                      [--metrics-addr <host:port>] [--report-dir <dir>]\n  kraftwerk inspect   <telemetry>... [-o <html>] [--perfetto <json>] [--service]\n  kraftwerk bench     [--json] [--compare <baseline>] [-o <json>] [--max-cells <n>]\n                      [--modes <a,b>] [--hpwl-tol <pct>] [--wall-tol <pct>] [-v|--verbose] [-q|--quiet]\n  kraftwerk timing    <netlist> [--requirement <ns>] [-v|--verbose] [-q|--quiet]\n  kraftwerk gen       <name> <cells> <nets> <rows> [--seed <n>] [--blocks <n>] [-o <file>]\n  kraftwerk stats     <netlist>\n  kraftwerk check     <netlist> <placement>\n  kraftwerk route     <netlist> <placement>\n  kraftwerk bookshelf <netlist> [<placement>] [-o <dir>]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Netlist, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        CliError::from(KraftwerkError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })
    })?;
    read_netlist(&text).map_err(|e| CliError::at(path, KraftwerkError::Parse(e)))
}

/// Looks up the value of `flag`. `Ok(None)` when the flag is absent; an
/// error when it is present but last, or followed by another flag — a
/// dangling flag used to be silently ignored.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(value) if !value.starts_with('-') => Ok(Some(value.clone())),
        _ => Err(format!("{flag} requires a value")),
    }
}

/// Like [`flag_value`] but the value is optional: `Ok(None)` when the
/// flag is absent, `Ok(Some(None))` when it is passed bare (last, or
/// followed by another flag), `Ok(Some(Some(v)))` with a value.
#[allow(clippy::option_option)]
fn optional_flag_value(args: &[String], flag: &str) -> Option<Option<String>> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(value) if !value.starts_with('-') => Some(Some(value.clone())),
        _ => Some(None),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Fails fast — I/O taxonomy, exit 3 — when the directory that will hold
/// the output `path` does not exist, so a long placement never dies at
/// its final write.
fn require_parent_dir(path: &str) -> Result<(), CliError> {
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        if !dir.is_dir() {
            return Err(kerr(KraftwerkError::Io {
                path: path.to_string(),
                message: format!("output directory `{}` does not exist", dir.display()),
            }));
        }
    }
    Ok(())
}

/// Shorthand: any pipeline-stage error into its `CliError` with the
/// taxonomy exit code.
fn kerr(e: impl Into<KraftwerkError>) -> CliError {
    CliError::from(e.into())
}

/// Writes `content` to `path`, mapping failure to the I/O exit code.
fn write_file(path: &str, content: String) -> Result<(), CliError> {
    std::fs::write(path, content).map_err(|e| {
        kerr(KraftwerkError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })
    })
}

fn snapshot(netlist: &Netlist, placement: &Placement, path: &str) -> Result<(), CliError> {
    let core = netlist.core_region();
    let mut svg = SvgCanvas::new(core.inflate(core.width() * 0.03), 900.0);
    for row in netlist.rows() {
        svg.rect(&row.rect(), "#f2f2f2", 1.0);
    }
    for (id, cell) in netlist.cells() {
        let color = match cell.kind() {
            CellKind::Standard => "#4682b4",
            CellKind::Block => "#c06030",
            CellKind::Fixed => "#333333",
        };
        svg.rect(&placement.cell_rect(id, cell.size()), color, 0.6);
    }
    write_file(path, svg.finish())
}

fn cmd_place(args: &[String]) -> Result<(), CliError> {
    use kraftwerk::trace::{Console, FanoutSink, ProgressSink, RunRecorder, Value, Verbosity};
    use std::sync::Arc;

    let console = Console::from_flags(
        has_flag(args, "--quiet") || has_flag(args, "-q"),
        has_flag(args, "--verbose") || has_flag(args, "-v"),
    );
    // Validate every value-taking flag before the (possibly long) run.
    // `--trace` may be passed bare: recording on, no JSONL file.
    let trace_flag = optional_flag_value(args, "--trace");
    let trace_path = trace_flag.clone().flatten();
    let report_path = flag_value(args, "--report")?;
    let out_path = flag_value(args, "-o")?;
    let svg_path = flag_value(args, "--svg")?;
    let perfetto_path = flag_value(args, "--perfetto")?;
    let profile = has_flag(args, "--profile");
    let alloc_stats = has_flag(args, "--alloc-stats");
    let Some(input) = args.first().filter(|a| !a.starts_with('-')) else {
        return Err("place: missing netlist path (it comes before the flags)".into());
    };
    // Output locations must be writable before the (possibly long) run.
    for path in [&trace_path, &report_path, &out_path, &svg_path, &perfetto_path]
        .into_iter()
        .flatten()
    {
        require_parent_dir(path)?;
    }
    let threads = match flag_value(args, "--threads")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--threads: `{v}` is not a number"))?,
        None => 0,
    };
    // Fault injection for the watchdog: multiply the force scale so the
    // transformation loop diverges on purpose (README "Robustness &
    // recovery").
    let force_scale = match flag_value(args, "--force-scale")? {
        Some(v) => {
            let f: f64 = v
                .parse()
                .map_err(|_| format!("--force-scale: `{v}` is not a number"))?;
            if !f.is_finite() || f <= 0.0 {
                return Err(format!("--force-scale: `{v}` must be finite and positive").into());
            }
            f
        }
        None => 1.0,
    };
    let snapshot_every = match flag_value(args, "--snapshot-every")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--snapshot-every: `{v}` is not a number"))?,
        None => 0,
    };
    // Movement-force weight K (the paper's convergence-speed knob);
    // defaults to the mode's value when absent. EXPERIMENTS.md overlays
    // recorded runs at different K through `kraftwerk inspect`.
    let k_override = match flag_value(args, "--k")? {
        Some(v) => {
            let k: f64 = v
                .parse()
                .map_err(|_| format!("--k: `{v}` is not a number"))?;
            if !k.is_finite() || k <= 0.0 {
                return Err(format!("--k: `{v}` must be finite and positive").into());
            }
            Some(k)
        }
        None => None,
    };
    let netlist = load(input)?;
    let fast = has_flag(args, "--fast");
    let mut config = if fast {
        KraftwerkConfig::fast()
    } else {
        KraftwerkConfig::standard()
    }
    .with_threads(threads)
    .with_snapshot_every(snapshot_every);
    if let Some(k) = k_override {
        config = config.with_k(k);
    }
    // Poisson backend: the flag beats the `KRAFTWERK_POISSON` environment
    // override already applied by `standard()`/`fast()`.
    if let Some(name) = flag_value(args, "--poisson")? {
        let kind = FieldSolverKind::parse(&name)
            .ok_or_else(|| {
                format!("--poisson: `{name}` is not multigrid, spectral, hybrid or direct")
            })?;
        config = config.with_field_solver(kind);
    }
    config.force_scale_boost = force_scale;

    // Heap accounting: the counting global allocator is always installed;
    // `--alloc-stats` switches its counters on for this run.
    if alloc_stats {
        kraftwerk::trace::alloc::set_tracking(true);
    }

    // Telemetry: a recorder feeds --trace/--report/--profile/--perfetto;
    // verbose mode additionally streams per-iteration progress to stderr.
    let recorder = (trace_flag.is_some()
        || report_path.is_some()
        || perfetto_path.is_some()
        || profile)
        .then(|| Arc::new(RunRecorder::new()));
    if let Some(rec) = &recorder {
        rec.set_meta("netlist", Value::from(netlist.name()));
        rec.set_meta("cells", Value::from(netlist.num_movable()));
        rec.set_meta("nets", Value::from(netlist.num_nets()));
        rec.set_meta("mode", Value::from(if fast { "fast" } else { "standard" }));
        rec.set_meta("poisson", Value::from(config.field_solver.name()));
        rec.set_meta("threads", Value::from(threads));
        rec.set_meta("k", Value::from(config.k));
        // Config provenance: where the resolved backend and thread count
        // came from, so two reports are comparable without the shell
        // history that produced them.
        rec.set_meta(
            "poisson.source",
            Value::from(if flag_value(args, "--poisson")?.is_some() {
                "--poisson"
            } else if std::env::var_os("KRAFTWERK_POISSON").is_some() {
                "KRAFTWERK_POISSON"
            } else {
                "default"
            }),
        );
        if let Ok(value) = std::env::var("KRAFTWERK_POISSON") {
            rec.set_meta("env.KRAFTWERK_POISSON", Value::from(value));
        }
        if let Ok(value) = std::env::var("KRAFTWERK_THREADS") {
            rec.set_meta("env.KRAFTWERK_THREADS", Value::from(value));
        }
        rec.set_meta("alloc.tracking", Value::from(kraftwerk::trace::alloc::tracking()));
    }
    let progress = (console.verbosity() == Verbosity::Verbose)
        .then(|| Arc::new(ProgressSink::new(console)));
    match (&recorder, &progress) {
        (Some(rec), Some(p)) => kraftwerk::trace::install(Arc::new(
            FanoutSink::new().with(rec.clone()).with(p.clone()),
        )),
        (Some(rec), None) => kraftwerk::trace::install(rec.clone()),
        (None, Some(p)) => kraftwerk::trace::install(p.clone()),
        (None, None) => {}
    }

    let started = std::time::Instant::now();
    let place_result = if has_flag(args, "--multilevel") {
        // The multilevel driver shares the session watchdog; validate the
        // netlist up front so bad input fails with the same taxonomy.
        match netlist.validate() {
            Ok(()) => kraftwerk::placer::try_place_multilevel(
                &netlist,
                config,
                &kraftwerk::placer::MultilevelConfig::default(),
            ),
            Err(e) => Err(KraftwerkError::from(e)),
        }
    } else {
        GlobalPlacer::new(config).try_place(&netlist)
    };
    let global = match place_result {
        Ok(g) => g,
        Err(e) => {
            kraftwerk::trace::uninstall();
            return Err(kerr(e));
        }
    };
    if !global.health.is_clean() {
        console.info(format!(
            "watchdog: {} trips, {} recoveries{}{}",
            global.health.trips,
            global.health.recoveries,
            if global.health.degraded { ", degraded (checkpointed best returned)" } else { "" },
            if global.health.budget_exhausted { ", budget exhausted" } else { "" },
        ));
    }
    let mut legal_result = legalize(&netlist, &global.placement);
    if let Ok(legal) = &mut legal_result {
        refine(&netlist, legal, 2);
    }
    let elapsed = started.elapsed().as_secs_f64();
    kraftwerk::trace::uninstall();

    if let Some(rec) = &recorder {
        rec.set_meta("health.trips", Value::from(global.health.trips));
        rec.set_meta("health.recoveries", Value::from(global.health.recoveries));
        rec.set_meta("health.degraded", Value::from(global.health.degraded));
        rec.set_meta(
            "health.budget_exhausted",
            Value::from(global.health.budget_exhausted),
        );
        rec.set_meta(
            "threads.resolved",
            Value::from(kraftwerk::par::current_threads()),
        );
        let run = rec.report();
        if let Some(path) = &trace_path {
            write_file(path, run.to_jsonl())?;
            console.info(format!("wrote {path}"));
        }
        if let Some(path) = &report_path {
            write_file(path, run.to_json())?;
            console.info(format!("wrote {path}"));
        }
        if let Some(path) = &perfetto_path {
            // The exporter reads the same stream `--trace` writes, so the
            // Perfetto span tree always matches the JSONL report.
            let data = kraftwerk::inspect::parse_run(&run.to_jsonl()).map_err(|e| CliError {
                message: format!("--perfetto: {e}"),
                code: 4,
            })?;
            write_file(path, kraftwerk::inspect::render_perfetto(&data))?;
            console.info(format!("wrote {path}"));
        }
        if profile {
            // Explicitly requested output: printed even under --quiet.
            println!("{}", run.profile_table());
        }
    }
    if alloc_stats {
        // Explicitly requested output: printed even under --quiet.
        println!("{}", kraftwerk::trace::alloc::report_table());
    }
    let legal = legal_result.map_err(kerr)?;

    let report = check_legality(&netlist, &legal, 1e-6);
    console.info(format!(
        "placed {} ({} cells, {} nets): hpwl {:.0}, {} transformations, {elapsed:.2}s, legal: {}",
        netlist.name(),
        netlist.num_movable(),
        netlist.num_nets(),
        metrics::hpwl(&netlist, &legal),
        global.iterations(),
        report.is_legal(),
    ));
    let out = out_path.unwrap_or_else(|| format!("{input}.pl"));
    write_file(&out, write_placement(&netlist, &legal))?;
    console.info(format!("wrote {out}"));
    if let Some(svg_path) = svg_path {
        snapshot(&netlist, &legal, &svg_path)?;
        console.info(format!("wrote {svg_path}"));
    }
    Ok(())
}

/// `kraftwerk inspect <telemetry>... [-o report.html] [--perfetto
/// trace.json] [--service]`: renders recorded runs (`--trace` JSONL
/// streams or `--report` summaries). One input yields the single-run
/// HTML dashboard and/or a Chrome trace-event export; two or more yield
/// the cross-run comparison document. With `--service` the inputs are
/// service telemetry instead — `loadgen --latency-out` job records
/// and/or a scraped `/metrics` snapshot — rendered as the deployment
/// dashboard (latency percentiles, queue depth, throughput, outcomes).
fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    use kraftwerk::trace::Console;

    let console = Console::from_flags(
        has_flag(args, "--quiet") || has_flag(args, "-q"),
        has_flag(args, "--verbose") || has_flag(args, "-v"),
    );
    // Every non-flag argument that is not a flag's value is a telemetry
    // file, so inputs may appear before or after flags.
    let mut inputs: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if arg.starts_with('-') {
            skip_next = matches!(arg.as_str(), "-o" | "--perfetto");
            continue;
        }
        inputs.push(arg);
    }
    if inputs.is_empty() {
        return Err(
            "inspect: missing telemetry path (a --trace JSONL stream or --report summary)".into(),
        );
    }
    let perfetto_path = flag_value(args, "--perfetto")?;
    let out_flag = flag_value(args, "-o")?;
    if has_flag(args, "--service") {
        if perfetto_path.is_some() {
            return Err("inspect: --service and --perfetto are exclusive".into());
        }
        // Concatenate every input: loadgen job records and scraped
        // /metrics snapshots can share one dashboard.
        let mut text = String::new();
        for input in &inputs {
            let chunk = std::fs::read_to_string(input).map_err(|e| {
                kerr(KraftwerkError::Io {
                    path: (*input).clone(),
                    message: e.to_string(),
                })
            })?;
            text.push_str(&chunk);
            if !text.ends_with('\n') {
                text.push('\n');
            }
        }
        let data = kraftwerk::inspect::parse_service(&text).map_err(|e| CliError {
            message: format!("{}: {e}", inputs[0]),
            code: 4,
        })?;
        let out = out_flag.unwrap_or_else(|| "service.html".to_string());
        require_parent_dir(&out)?;
        write_file(&out, kraftwerk::inspect::render_service(&data))?;
        console.info(format!(
            "wrote {out} ({} job records, {} snapshot histograms)",
            data.jobs.len(),
            data.histograms.len()
        ));
        return Ok(());
    }
    let mut runs: Vec<(String, kraftwerk::inspect::RunData)> = Vec::new();
    for input in &inputs {
        let text = std::fs::read_to_string(input).map_err(|e| {
            kerr(KraftwerkError::Io {
                path: (*input).clone(),
                message: e.to_string(),
            })
        })?;
        let run = kraftwerk::inspect::parse_run(&text).map_err(|e| CliError {
            message: format!("{input}: {e}"),
            // Unreadable telemetry is a parse failure in the taxonomy.
            code: 4,
        })?;
        runs.push(((*input).clone(), run));
    }

    if runs.len() > 1 {
        if perfetto_path.is_some() {
            return Err("inspect: --perfetto takes exactly one telemetry input".into());
        }
        let out = out_flag.unwrap_or_else(|| "compare.html".to_string());
        require_parent_dir(&out)?;
        write_file(&out, kraftwerk::inspect::render_comparison(&runs))?;
        console.info(format!("wrote {out} ({} runs)", runs.len()));
        return Ok(());
    }

    let (input, run) = &runs[0];
    if let Some(path) = &perfetto_path {
        require_parent_dir(path)?;
        write_file(path, kraftwerk::inspect::render_perfetto(run))?;
        console.info(format!("wrote {path}"));
    }
    // With --perfetto and no -o, the trace is the only requested output.
    if perfetto_path.is_none() || out_flag.is_some() {
        let out = out_flag.unwrap_or_else(|| format!("{input}.html"));
        require_parent_dir(&out)?;
        write_file(&out, kraftwerk::inspect::render(run))?;
        console.info(format!("wrote {out}"));
    }
    Ok(())
}

/// A percentage-valued flag (`--hpwl-tol 2` = 2%) as a fraction.
fn tolerance_flag(args: &[String], flag: &str, default_pct: f64) -> Result<f64, CliError> {
    match flag_value(args, flag)? {
        Some(v) => {
            let pct: f64 = v
                .parse()
                .map_err(|_| format!("{flag}: `{v}` is not a number"))?;
            if !pct.is_finite() || pct < 0.0 {
                return Err(format!("{flag}: `{v}` must be finite and non-negative").into());
            }
            Ok(pct / 100.0)
        }
        None => Ok(default_pct / 100.0),
    }
}

/// `kraftwerk bench`: `--json` measures the Table 1 subset fresh;
/// `--compare <baseline>` re-measures and gates against a committed
/// `BENCH_place.json` (hard-fail on HPWL drift, warn-only on wall clock).
fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    use kraftwerk::bench::compare::{parse_baseline, run_compare, CompareConfig};
    use kraftwerk::netlist::synth::{generate, mcnc, scale};
    use kraftwerk::trace::Console;

    let console = Console::from_flags(
        has_flag(args, "--quiet") || has_flag(args, "-q"),
        has_flag(args, "--verbose") || has_flag(args, "-v"),
    );
    let max_cells = match flag_value(args, "--max-cells")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--max-cells: `{v}` is not a number"))?,
        None => 2000,
    };
    let out = flag_value(args, "-o")?;
    if let Some(path) = &out {
        require_parent_dir(path)?;
    }

    if let Some(baseline_path) = flag_value(args, "--compare")? {
        let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
            kerr(KraftwerkError::Io {
                path: baseline_path.clone(),
                message: e.to_string(),
            })
        })?;
        let mut baseline = parse_baseline(&text).map_err(|e| CliError {
            message: format!("{baseline_path}: {e}"),
            code: 4,
        })?;
        // --modes narrows the gate to a subset of baseline rows, so the
        // cheap MCNC sweep and the big multilevel scale tiers can gate in
        // separate invocations with different --max-cells budgets.
        if let Some(modes) = flag_value(args, "--modes")? {
            let selected: Vec<String> = modes.split(',').map(|m| m.trim().to_owned()).collect();
            baseline.retain(|run| selected.contains(&run.mode));
        }
        let config = CompareConfig {
            hpwl_tolerance: tolerance_flag(args, "--hpwl-tol", 2.0)?,
            wall_tolerance: tolerance_flag(args, "--wall-tol", 25.0)?,
            max_cells,
        };
        let report = run_compare(&baseline, &config);
        console.info(report.summary_table());
        match &out {
            Some(path) => {
                write_file(path, report.to_json())?;
                console.info(format!("wrote {path}"));
            }
            // The machine-readable verdict is the command's output.
            None => println!("{}", report.to_json()),
        }
        if !report.passed() {
            return Err(format!(
                "bench: HPWL regression beyond {:.2}% against {baseline_path}",
                config.hpwl_tolerance * 100.0
            )
            .into());
        }
        if report.wall_warnings() > 0 {
            console.info(format!(
                "bench: {} wall-clock drift warning(s) beyond {:.0}% (not fatal)",
                report.wall_warnings(),
                config.wall_tolerance * 100.0
            ));
        }
        return Ok(());
    }

    if !has_flag(args, "--json") {
        return Err("bench: pass --json to measure or --compare <baseline> to gate".into());
    }
    // --modes restricts which configs run (comma-separated), so scaling
    // measurements don't have to re-run the whole MCNC × mode matrix.
    let selected: Option<Vec<String>> = flag_value(args, "--modes")?
        .map(|v| v.split(',').map(|m| m.trim().to_owned()).collect());
    let wants = |mode: &str| selected.as_ref().is_none_or(|s| s.iter().any(|m| m == mode));
    let mut runs = Vec::new();
    let mcnc_modes: Vec<&str> = ["standard", "fast", "spectral"]
        .into_iter()
        .filter(|m| wants(m))
        .collect();
    for preset in kraftwerk::bench::table1_circuits(if mcnc_modes.is_empty() { 0 } else { max_cells }) {
        let netlist = generate(&mcnc::config_for(preset));
        for &mode in &mcnc_modes {
            // Must stay in sync with `config_for_mode` in the bench crate,
            // which rebuilds the same configs when gating with --compare.
            let config = match mode {
                "fast" => KraftwerkConfig::fast(),
                "spectral" => {
                    KraftwerkConfig::standard().with_field_solver(FieldSolverKind::Spectral)
                }
                _ => KraftwerkConfig::standard(),
            };
            let (_, run) = kraftwerk::bench::run_kraftwerk_recorded(&netlist, config, mode);
            console.info(format!(
                "{} ({mode}): hpwl {:.6} m in {:.2}s over {} transformations",
                run.netlist, run.hpwl_m, run.wall_s, run.iterations
            ));
            runs.push(run);
        }
    }
    // Scaling-curve tiers (10k → 1M cells) run in the multilevel +
    // bound-to-bound flow, the documented path past ~25k cells. They only
    // enter the measurement when --max-cells is raised to reach them, so
    // the default quick run stays quick. The spectral and hybrid Poisson
    // backends ride the same flow on the 10k/50k tiers (the committed
    // baseline scope); the bigger tiers stay on the plain V-cycle flow.
    let ml_modes = ["multilevel-b2b", "multilevel-spectral", "multilevel-hybrid"];
    for tier in scale::TIERS.iter().filter(|t| t.cells <= max_cells) {
        let tier_modes: Vec<&str> = ml_modes
            .into_iter()
            .filter(|&m| wants(m) && (m == "multilevel-b2b" || tier.cells <= 50_000))
            .collect();
        if tier_modes.is_empty() {
            continue;
        }
        let netlist = generate(&scale::config_for(*tier));
        for &mode in &tier_modes {
            // Must stay in sync with `multilevel_config_for_mode` in the
            // bench crate, which rebuilds the same configs when gating.
            let config = match mode {
                "multilevel-spectral" => {
                    KraftwerkConfig::fast().with_field_solver(FieldSolverKind::Spectral)
                }
                "multilevel-hybrid" => {
                    KraftwerkConfig::fast().with_field_solver(FieldSolverKind::Hybrid)
                }
                _ => KraftwerkConfig::fast(),
            };
            let (_, run) = kraftwerk::bench::run_kraftwerk_multilevel_recorded(
                &netlist,
                config,
                &kraftwerk::placer::MultilevelConfig::default(),
                mode,
            );
            console.info(format!(
                "{} ({mode}): hpwl {:.6} m in {:.2}s over {} transformations",
                run.netlist, run.hpwl_m, run.wall_s, run.iterations
            ));
            runs.push(run);
        }
    }
    let json = kraftwerk::bench::bench_json(&runs);
    match &out {
        Some(path) => {
            write_file(path, json)?;
            console.info(format!("wrote {path} ({} runs)", runs.len()));
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_timing(args: &[String]) -> Result<(), CliError> {
    use kraftwerk::trace::Console;

    let console = Console::from_flags(
        has_flag(args, "--quiet") || has_flag(args, "-q"),
        has_flag(args, "--verbose") || has_flag(args, "-v"),
    );
    let Some(input) = args.first().filter(|a| !a.starts_with('-')) else {
        return Err("timing: missing netlist path (it comes before the flags)".into());
    };
    let netlist = load(input)?;
    let model = DelayModel::default();
    let sta = Sta::new(&netlist, model).map_err(kerr)?;
    console.info(format!("zero-wire lower bound: {:.3} ns", sta.lower_bound()));
    if let Some(req) = flag_value(args, "--requirement")? {
        let requirement: f64 = req.parse().map_err(|_| format!("bad requirement `{req}`"))?;
        let result = meet_requirements(&netlist, model, KraftwerkConfig::standard(), requirement, 60)
            .map_err(kerr)?;
        console.info(format!(
            "requirement {requirement} ns: met = {} ({} trade-off points recorded)",
            result.met,
            result.curve.len()
        ));
        for p in &result.curve {
            console.info(format!(
                "  step {:3}  delay {:8.3} ns  hpwl {:10.0}",
                p.iteration, p.max_delay, p.hpwl
            ));
        }
    } else {
        let result = optimize_timing_legalized(&netlist, model, KraftwerkConfig::standard(), 3)
            .map_err(kerr)?;
        console.info(format!(
            "timing-driven placement: longest path {:.3} ns, hpwl {:.0}",
            sta.analyze(&result.placement).max_delay,
            metrics::hpwl(&netlist, &result.placement),
        ));
    }
    Ok(())
}

/// Reads and parses a placement file against `netlist` with taxonomy
/// exit codes (I/O → 3, parse → 4).
fn load_placement(netlist: &Netlist, path: &str) -> Result<Placement, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        kerr(KraftwerkError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })
    })?;
    read_placement(netlist, &text).map_err(|e| CliError::at(path, KraftwerkError::Parse(e)))
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    if args.len() < 4 {
        return Err("gen: need <name> <cells> <nets> <rows>".into());
    }
    let parse = |s: &String, what: &str| -> Result<usize, String> {
        s.parse().map_err(|_| format!("bad {what} `{s}`"))
    };
    let name = args[0].clone();
    let cells = parse(&args[1], "cell count")?;
    let nets = parse(&args[2], "net count")?;
    let rows = parse(&args[3], "row count")?;
    let mut synth = SynthConfig::with_size(name.clone(), cells, nets, rows);
    if let Some(seed) = flag_value(args, "--seed")? {
        synth = synth.seed(
            seed.parse()
                .map_err(|_| CliError::from(format!("gen: bad --seed `{seed}`")))?,
        );
    }
    if let Some(blocks) = flag_value(args, "--blocks")? {
        synth = synth.blocks(
            blocks
                .parse()
                .map_err(|_| CliError::from(format!("gen: bad --blocks `{blocks}`")))?,
        );
    }
    let netlist = generate(&synth);
    let out = flag_value(args, "-o")?.unwrap_or_else(|| format!("{name}.kw"));
    write_file(&out, write_netlist(&netlist))?;
    println!("wrote {out} ({} cells, {} nets, {} rows)", netlist.num_cells(), netlist.num_nets(), rows);
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let Some(input) = args.first() else {
        return Err("stats: missing netlist path".into());
    };
    let netlist = load(input)?;
    println!("{}", NetlistStats::collect(&netlist));
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let (Some(nl_path), Some(pl_path)) = (args.first(), args.get(1)) else {
        return Err(String::from("check: need <netlist> <placement>").into());
    };
    let netlist = load(nl_path)?;
    let placement = load_placement(&netlist, pl_path)?;
    let report = check_legality(&netlist, &placement, 1e-6);
    println!(
        "hpwl {:.0}, legal: {} ({} overlapping pairs, {} off-row, {} out of core)",
        metrics::hpwl(&netlist, &placement),
        report.is_legal(),
        report.overlapping_pairs,
        report.off_row_cells,
        report.out_of_core_cells,
    );
    if report.is_legal() {
        Ok(())
    } else {
        Err(kerr(KraftwerkError::Legalize(
            "placement is not legal".to_string(),
        )))
    }
}

fn cmd_route(args: &[String]) -> Result<(), CliError> {
    use kraftwerk::congestion::router::{route, RouterConfig};
    let (Some(nl_path), Some(pl_path)) = (args.first(), args.get(1)) else {
        return Err(String::from("route: need <netlist> <placement>").into());
    };
    let netlist = load(nl_path)?;
    let placement = load_placement(&netlist, pl_path)?;
    let nx = 32;
    let ny = ((netlist.core_region().height() / netlist.core_region().width() * nx as f64)
        .round() as usize)
        .max(4);
    let result = route(&netlist, &placement, nx, ny, &RouterConfig::default());
    println!(
        "routed {} connections on a {nx}x{ny} grid: wirelength {:.0} gcell edges, overflow {:.0}, peak utilization {:.2}",
        result.connections, result.wirelength, result.overflow, result.max_utilization
    );
    Ok(())
}

fn cmd_bookshelf(args: &[String]) -> Result<(), CliError> {
    use kraftwerk::netlist::format::bookshelf;
    let Some(nl_path) = args.first() else {
        return Err(String::from("bookshelf: missing netlist path").into());
    };
    let netlist = load(nl_path)?;
    let placement = match args.get(1).filter(|a| !a.starts_with('-')) {
        Some(pl_path) => Some(load_placement(&netlist, pl_path)?),
        None => None,
    };
    let dir = flag_value(args, "-o")?.unwrap_or_else(|| format!("{}_bookshelf", netlist.name()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{dir}: {e}"))?;
    for (ext, content) in bookshelf::write(&netlist, placement.as_ref()) {
        let path = format!("{dir}/{}.{ext}", netlist.name());
        write_file(&path, content)?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `kraftwerk serve`: run the placement daemon until SIGTERM/SIGINT or a
/// client `shutdown` frame, then print the job totals. `--addr :0` picks
/// a free port; the bound address is printed (and flushed) first so
/// scripts can scrape it. `KRAFTWERK_FAULT=<class>` injects a
/// daemon-wide fault into every job (see the README fault matrix).
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use std::io::Write as _;

    let mut cfg = kraftwerk::serve::ServeConfig::default();
    if let Some(addr) = flag_value(args, "--addr")? {
        cfg.addr = addr;
    }
    if let Some(n) = flag_value(args, "--workers")? {
        cfg.workers = n
            .parse::<usize>()
            .map_err(|_| "--workers expects a positive integer".to_string())?
            .max(1);
    }
    if let Some(n) = flag_value(args, "--queue-cap")? {
        cfg.queue_capacity = n
            .parse::<usize>()
            .map_err(|_| "--queue-cap expects a positive integer".to_string())?
            .max(1);
    }
    if let Some(s) = flag_value(args, "--deadline")? {
        let v: f64 = s
            .parse()
            .map_err(|_| "--deadline expects seconds".to_string())?;
        if !v.is_finite() || v <= 0.0 {
            return Err("--deadline expects positive finite seconds".into());
        }
        cfg.default_deadline_s = v;
    }
    if let Some(dir) = flag_value(args, "--journal-dir")? {
        cfg.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(n) = flag_value(args, "--max-bytes")? {
        cfg.max_frame_bytes = n
            .parse::<usize>()
            .map_err(|_| "--max-bytes expects a byte count".to_string())?
            .max(1024);
    }
    if has_flag(args, "--no-retry") {
        cfg.retry_degraded = false;
    }
    if let Some(addr) = flag_value(args, "--metrics-addr")? {
        cfg.metrics_addr = Some(addr);
    }
    if let Some(dir) = flag_value(args, "--report-dir")? {
        cfg.report_dir = Some(std::path::PathBuf::from(dir));
    }

    let server = kraftwerk::serve::Server::bind(cfg).map_err(|e| CliError {
        message: format!("bind failed: {e}"),
        code: KraftwerkError::Io {
            path: String::new(),
            message: String::new(),
        }
        .exit_code() as u8,
    })?;
    println!("listening on {}", server.local_addr());
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on http://{addr}/metrics");
    }
    let _ = std::io::stdout().flush();
    let summary = server.run().map_err(|e| format!("serve failed: {e}"))?;
    println!(
        "served: ok={} degraded={} failed={} rejected={} retries={} arena_reuses={} connections={}",
        summary.jobs_ok,
        summary.jobs_degraded,
        summary.jobs_failed,
        summary.jobs_rejected,
        summary.retries,
        summary.arena_reuses,
        summary.connections
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "place" => cmd_place(rest),
        "serve" => cmd_serve(rest),
        "inspect" => cmd_inspect(rest),
        "bench" => cmd_bench(rest),
        "timing" => cmd_timing(rest),
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "check" => cmd_check(rest),
        "route" => cmd_route(rest),
        "bookshelf" => cmd_bookshelf(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError { message, code }) => {
            eprintln!("error: {message}");
            ExitCode::from(code.max(1))
        }
    }
}
