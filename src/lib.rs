//! # Kraftwerk — Generic Global Placement and Floorplanning
//!
//! A from-scratch Rust reproduction of *H. Eisenmann and F. M. Johannes,
//! "Generic Global Placement and Floorplanning", DAC 1998* — the
//! force-directed analytical placer later known as **Kraftwerk** — together
//! with every substrate the paper's evaluation depends on: netlist model
//! and MCNC-shaped benchmark generator, sparse conjugate-gradient solver,
//! Poisson force fields, row legalization, static timing analysis,
//! congestion/thermal maps, mixed block/cell floorplanning, and
//! TimberWolf-/GORDIAN-class comparison placers.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration
//! tests. Each area lives in its own crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`trace`] | `kraftwerk-trace` | zero-dependency tracing, run telemetry, JSONL reports |
//! | [`par`] | `kraftwerk-par` | deterministic data-parallel runtime (worker pool, par_map) |
//! | [`geom`] | `kraftwerk-geom` | points, rectangles, SVG plots |
//! | [`netlist`] | `kraftwerk-netlist` | cells/nets/pins, metrics, file format, synthetic benchmarks |
//! | [`sparse`] | `kraftwerk-sparse` | CSR matrices, preconditioned CG |
//! | [`field`] | `kraftwerk-field` | density maps, Poisson force solvers |
//! | [`placer`] | `kraftwerk-core` | the Kraftwerk algorithm itself |
//! | [`legalize`] | `kraftwerk-legalize` | Abacus row legalization + refinement |
//! | [`baselines`] | `kraftwerk-baselines` | simulated-annealing and quadratic-partitioning placers |
//! | [`timing`] | `kraftwerk-timing` | Elmore STA, criticality weighting, timing-driven flows |
//! | [`congestion`] | `kraftwerk-congestion` | routing demand, congestion and thermal maps |
//! | [`floorplan`] | `kraftwerk-floorplan` | mixed block/cell flows |
//! | [`inspect`] | `kraftwerk-inspect` | HTML/SVG run dashboards from recorded telemetry |
//! | [`bench`] | `kraftwerk-bench` | experiment harness and the bench regression gate |
//!
//! # Quick start
//!
//! ```
//! use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};
//! use kraftwerk::netlist::synth::{generate, SynthConfig};
//! use kraftwerk::netlist::metrics;
//! use kraftwerk::legalize::{legalize, refine};
//!
//! // Generate an MCNC-shaped benchmark, place it, legalize it.
//! let netlist = generate(&SynthConfig::with_size("demo", 200, 260, 8));
//! let global = GlobalPlacer::new(KraftwerkConfig::standard()).place(&netlist);
//! let mut legal = legalize(&netlist, &global.placement)?;
//! refine(&netlist, &mut legal, 2);
//! println!("final wire length: {:.0}", metrics::hpwl(&netlist, &legal));
//! # Ok::<(), kraftwerk::legalize::LegalizeError>(())
//! ```
//!
//! See `examples/` for the domain flows (timing-driven placement, mixed
//! floorplanning, ECO, congestion/heat-driven placement) and the
//! `kraftwerk-bench` crate for the harness regenerating every table of
//! the paper.

pub use kraftwerk_baselines as baselines;
pub use kraftwerk_bench as bench;
pub use kraftwerk_congestion as congestion;
pub use kraftwerk_core as placer;
pub use kraftwerk_field as field;
pub use kraftwerk_floorplan as floorplan;
pub use kraftwerk_geom as geom;
pub use kraftwerk_inspect as inspect;
pub use kraftwerk_legalize as legalize;
pub use kraftwerk_netlist as netlist;
pub use kraftwerk_par as par;
pub use kraftwerk_serve as serve;
pub use kraftwerk_sparse as sparse;
pub use kraftwerk_timing as timing;
pub use kraftwerk_trace as trace;
