//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build sandbox has no registry access, so the workspace vendors the
//! exact subset of `rand` 0.8.5 it uses. Every sampling algorithm below is
//! a faithful port of the upstream implementation and produces
//! **bit-identical streams** for a given [`RngCore`] — this matters
//! because the committed benchmark baselines (`BENCH_place.json`) and the
//! MCNC-style synthetic circuits were generated with the real crate.
//!
//! Ported pieces:
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion from
//!   `rand_core` 0.6.
//! * `Standard` `f64`/`f32` — the multiply-based 53-/24-bit conversion.
//! * `UniformFloat::sample_single[_inclusive]` — the `[1,2)` mantissa
//!   trick with multiply-before-add.
//! * `UniformInt::sample_single_inclusive` — widening-multiply rejection
//!   with the `(range << lz) - 1` zone.
//! * `SliceRandom::shuffle` — Fisher–Yates with the `u32` index path.

/// The core of a random number generator: raw 32/64-bit draws.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream used by
    /// `rand_core` 0.6 (bit-exact).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the state first, in case the input has low Hamming
            // weight (matches rand_core's comment and behaviour).
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Distributions (the subset backing `Rng::gen`).
pub mod distributions {
    use super::RngCore;

    /// Samples values of type `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform over the type's natural range).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // Multiply-based 53-bit conversion (rand 0.8 `Standard`).
            let value = rng.next_u64() >> 11;
            let scale = 1.0 / ((1u64 << 53) as f64);
            scale * value as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> 8;
            let scale = 1.0 / ((1u32 << 24) as f32);
            scale * value as f32
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            // rand 0.8 samples usize via u64 on 64-bit targets.
            rng.next_u64() as usize
        }
    }

    /// Uniform-range sampling (the subset backing `Rng::gen_range`).
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        #[inline]
        fn wmul32(a: u32, b: u32) -> (u32, u32) {
            let t = u64::from(a) * u64::from(b);
            ((t >> 32) as u32, t as u32)
        }

        #[inline]
        fn wmul64(a: u64, b: u64) -> (u64, u64) {
            let t = u128::from(a) * u128::from(b);
            ((t >> 64) as u64, t as u64)
        }

        /// Types samplable uniformly from a range, matching the rand 0.8
        /// single-shot (`sample_single`) algorithms bit-for-bit.
        pub trait SampleUniform: Sized {
            /// Samples from `[low, high)`.
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Samples from `[low, high]`.
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! uniform_int_impl {
            ($ty:ty, $uty:ty, $u_large:ty, $draw:ident, $wmul:ident) => {
                impl SampleUniform for $ty {
                    fn sample_single<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low < high, "cannot sample empty range");
                        Self::sample_single_inclusive(low, high - 1, rng)
                    }

                    fn sample_single_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low <= high, "cannot sample empty range");
                        let range = high.wrapping_sub(low).wrapping_add(1) as $uty as $u_large;
                        if range == 0 {
                            // The range covers the whole domain.
                            return rng.$draw() as $ty;
                        }
                        // Widening-multiply rejection zone, as in rand 0.8
                        // for types wider than 16 bits.
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v: $u_large = rng.$draw() as $u_large;
                            let (hi, lo) = $wmul(v, range);
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        uniform_int_impl! { i32, u32, u32, next_u32, wmul32 }
        uniform_int_impl! { u32, u32, u32, next_u32, wmul32 }
        uniform_int_impl! { i64, u64, u64, next_u64, wmul64 }
        uniform_int_impl! { u64, u64, u64, next_u64, wmul64 }
        uniform_int_impl! { isize, usize, u64, next_u64, wmul64 }
        uniform_int_impl! { usize, usize, u64, next_u64, wmul64 }

        macro_rules! uniform_float_impl {
            ($ty:ty, $bits_to_discard:expr, $one_bits:expr, $from_bits:path, $draw:ident) => {
                impl SampleUniform for $ty {
                    fn sample_single<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let scale = high - low;
                        // A value in [1, 2): random mantissa, exponent 0.
                        let value1_2 = $from_bits((rng.$draw() >> $bits_to_discard) | $one_bits);
                        let value0_1 = value1_2 - 1.0;
                        // Multiply before add (upstream's FMA-friendly order).
                        value0_1 * scale + low
                    }

                    fn sample_single_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low <= high, "cannot sample empty range");
                        let scale = (high - low) / (1.0 - <$ty>::EPSILON / 2.0);
                        let value1_2 = $from_bits((rng.$draw() >> $bits_to_discard) | $one_bits);
                        let value0_1 = value1_2 - 1.0;
                        value0_1 * scale + low
                    }
                }
            };
        }

        uniform_float_impl! { f64, 12u32, 0x3FF0_0000_0000_0000u64, f64::from_bits, next_u64 }
        uniform_float_impl! { f32, 9u32, 0x3F80_0000u32, f32::from_bits, next_u32 }

        /// Range types accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Samples one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_single(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_single_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::{Distribution, Standard};

/// Convenience extensions over [`RngCore`] (the user-facing trait).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{RngCore, SampleUniform};

    // rand 0.8 routes indices below 2^32 through the u32 sampler.
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= (u32::MAX as usize) {
            u32::sample_single(0, ubound as u32, rng) as usize
        } else {
            usize::sample_single(0, ubound, rng)
        }
    }

    /// Slice shuffling and sampling, bit-exact with rand 0.8 in the
    /// regimes this workspace uses.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, `u32` index path).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Samples `amount` distinct elements. Matches rand 0.8's draw
        /// pattern (Floyd's algorithm below the `amount < 163` inplace
        /// threshold), so the selected *set* and the RNG state afterwards
        /// are identical; the iteration order of duplicte-hit cases may
        /// differ from upstream's randomized-order trick.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let indices = sample_indices(rng, self.len() as u32, amount as u32);
            SliceChooseIter { slice: self, indices: indices.into_iter() }
        }
    }

    /// Iterator over elements selected by
    /// [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<u32>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i as usize])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    // Port of rand 0.8 `seq::index::sample` for `amount < 163`: Floyd's
    // algorithm unless the slice is barely larger than the sample, in
    // which case a partial Fisher–Yates over all indices is cheaper.
    fn sample_indices<R: RngCore + ?Sized>(rng: &mut R, length: u32, amount: u32) -> Vec<u32> {
        debug_assert!(amount <= length);
        if (length as f32) < 1.6 * amount as f32 {
            // sample_inplace: partial shuffle of 0..length.
            let mut indices: Vec<u32> = (0..length).collect();
            for i in 0..amount {
                let j = u32::sample_single(i, length, rng);
                indices.swap(i as usize, j as usize);
            }
            indices.truncate(amount as usize);
            indices
        } else {
            // sample_floyd: `amount` inclusive draws, one per j.
            let mut indices: Vec<u32> = Vec::with_capacity(amount as usize);
            for j in length - amount..length {
                let t = u32::sample_single_inclusive(0, j, rng);
                if indices.contains(&t) {
                    indices.push(j);
                } else {
                    indices.push(t);
                }
            }
            indices
        }
    }
}

/// Small supplementary generators (used by tests of this stand-in only).
pub mod rngs {
    /// A tiny splitmix64 generator for self-tests.
    #[derive(Debug, Clone)]
    pub struct SplitMix64(pub u64);

    impl super::RngCore for SplitMix64 {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A counter RNG with predictable output for algorithm KATs.
    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.0;
            self.0 = self.0.wrapping_add(1);
            v
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn standard_f64_is_53_bit_multiply() {
        let mut rng = StepRng(1u64 << 11);
        let v: f64 = rng.gen();
        assert_eq!(v, 1.0 / (1u64 << 53) as f64);
    }

    #[test]
    fn float_range_hits_low_end_at_zero_draw() {
        let mut rng = StepRng(0);
        let v = rng.gen_range(3.0..5.0);
        assert_eq!(v, 3.0);
    }

    #[test]
    fn int_range_is_in_bounds() {
        let mut rng = rngs::SplitMix64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0..7);
            assert!((0..7).contains(&v));
            let w = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = rngs::SplitMix64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
