//! Offline placeholder for `serde`.
//!
//! The workspace declares serde only as an *optional* dependency whose
//! feature is never enabled; this empty crate exists purely so dependency
//! resolution succeeds without registry access. If a future change
//! actually turns the feature on, the compile error from the missing
//! derives will point straight here.
