//! Offline stand-in for the `rand_chacha` 0.3 crate: a bit-exact
//! [`ChaCha8Rng`].
//!
//! The real crate drives a ChaCha block function (djb variant: 64-bit
//! block counter in state words 12–13, 64-bit stream id in words 14–15)
//! through `rand_core`'s `BlockRng`, buffering **four** sequential blocks
//! (64 `u32` words) per refill. `next_u64` has the `BlockRng` wrap
//! semantics: when one word is left in the buffer it becomes the low half
//! and the first word of the next refill becomes the high half. All of
//! that is reproduced here so seeded streams match the upstream crate
//! word for word — the committed benchmark baselines depend on it.

use rand::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // 4 ChaCha blocks of 16 words each

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

fn chacha8_block(key: &[u32; 8], counter: u64, stream: u64, out: &mut [u32]) {
    chacha_block(4, key, counter, stream, out);
}

fn chacha_block(double_rounds: usize, key: &[u32; 8], counter: u64, stream: u64, out: &mut [u32]) {
    let mut x: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let input = x;
    for _ in 0..double_rounds {
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(input.iter())) {
        *o = w.wrapping_add(*i);
    }
}

/// The ChaCha stream cipher with 8 rounds, as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// Block counter of the *next* refill.
    counter: u64,
    stream: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means empty.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        for b in 0..4u64 {
            let lo = (b as usize) * 16;
            chacha8_block(
                &self.key,
                self.counter.wrapping_add(b),
                self.stream,
                &mut self.buf[lo..lo + 16],
            );
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64 semantics, including the wrap-around case.
        let i = self.index;
        if i < BUF_WORDS - 1 {
            self.index = i + 2;
            (u64::from(self.buf[i + 1]) << 32) | u64::from(self.buf[i])
        } else if i >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // BlockRng::fill_bytes: consume whole words; a partial trailing
        // word is spent entirely, its unused bytes discarded.
        let mut filled = 0;
        while filled < dest.len() {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let word = self.buf[self.index].to_le_bytes();
            self.index += 1;
            let n = (dest.len() - filled).min(4);
            dest[filled..filled + n].copy_from_slice(&word[..n]);
            filled += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With an all-zero key and nonce, the djb state layout coincides
    /// with the RFC 8439 (IETF) layout for small counters, so the block
    /// machinery (constants, quarter round, key/counter placement, final
    /// add, sequential counters) can be validated against the published
    /// ChaCha20 keystream by running 10 double rounds.
    #[test]
    fn block_function_matches_rfc8439_chacha20_zero_key_vectors() {
        let key = [0u32; 8];
        let mut out = [0u32; 16];
        // Block 0 keystream (RFC 8439 A.1 test vector #1):
        // 76 b8 e0 ad a0 f1 3d 90 40 5d 6a e5 53 86 bd 28 ...
        chacha_block(10, &key, 0, 0, &mut out);
        let expected0: [u32; 16] = [
            0xade0_b876,
            0x903d_f1a0,
            0xe56a_5d40,
            0x28bd_8653,
            0xb819_d2bd,
            0x1aed_8da0,
            0xccef_36a8,
            0xc70d_778b,
            0x7c59_41da,
            0x8d48_5751,
            0x3fe0_2477,
            0x374a_d8b8,
            0xf4b8_436a,
            0x1ca1_1815,
            0x69b6_87c3,
            0x8665_eeb2,
        ];
        assert_eq!(out, expected0);
        // Block 1 keystream (RFC 8439 A.1 test vector #2) starts
        // 9f 07 e7 be 55 51 38 7a ...
        chacha_block(10, &key, 1, 0, &mut out);
        assert_eq!(out[0], 0xbee7_079f);
        assert_eq!(out[1], 0x7a38_5155);
    }

    #[test]
    fn u32_and_u64_views_read_one_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        let lo = u64::from(a.next_u32());
        let hi = u64::from(a.next_u32());
        assert_eq!(b.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn wraparound_next_u64_spans_refills() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..63 {
            a.next_u32();
        }
        // One word left: next_u64 must take it as the low half and the
        // first word of the next buffer as the high half.
        let mut b = a.clone();
        let last = u64::from(b.next_u32());
        let first = u64::from(b.next_u32());
        assert_eq!(a.next_u64(), (first << 32) | last);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let va = a.next_u64();
        assert_eq!(va, b.next_u64());
        assert_ne!(va, c.next_u64());
    }
}
