//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough of the criterion 0.5 API for the workspace's
//! `[[bench]]` targets to compile and produce rough timings offline: no
//! statistics, no plots — each benchmark runs `sample_size` iterations
//! and prints the mean wall time. The serious measurements in this repo
//! come from the `kraftwerk bench` harness, not these micro-benches.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// How `iter_batched` amortizes setup cost (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut bencher = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / self.sample_size.max(1) as f64;
        println!("{}/{}: {:.6} s/iter ({} iters)", self.name, id.id, mean, bencher.iters);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Opaque value barrier (re-exported for bench bodies).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut bencher = Bencher { iters: 4, elapsed: Duration::ZERO };
        let mut setups = 0u64;
        bencher.iter_batched(
            || {
                setups += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 4);
    }
}
