//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (with an optional `#![proptest_config(..)]` header), [`prop_assert!`] /
//! [`prop_assert_eq!`], range and tuple [`Strategy`]s, and `prop_map`.
//! Inputs are sampled deterministically (seeded per test name), so runs
//! are reproducible; there is no shrinking — a failing case panics with
//! the normal assertion message.

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-test value source (splitmix64 seeded by test name).
#[derive(Debug)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a runner seeded from the property's name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        // FNV-1a over the name gives a stable, name-sensitive seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Produces values of an input type for a property.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Generates one input.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.map)(self.source.new_value(runner))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn new_value(&self, runner: &mut TestRunner) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(runner.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, runner: &mut TestRunner) -> $ty {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(runner.next_u64()) % span) as i128;
                (*self.start() as i128 + offset) as $ty
            }
        }
    )+};
}

int_range_strategy! { i32, u32, i64, u64, isize, usize }

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn new_value(&self, runner: &mut TestRunner) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let unit = runner.next_unit() as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy! { f32, f64 }

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = ( $($strat,)+ );
                let mut __runner = $crate::TestRunner::new(stringify!($name));
                for __case in 0..__config.cases {
                    let ( $($arg,)+ ) =
                        $crate::Strategy::new_value(&__strategy, &mut __runner);
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// The usual glob import for call sites.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut runner = crate::TestRunner::new("ranges_sample_in_bounds");
        for _ in 0..500 {
            let v = Strategy::new_value(&(3usize..10), &mut runner);
            assert!((3..10).contains(&v));
            let f = Strategy::new_value(&(-2.0..4.0f64), &mut runner);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = crate::TestRunner::new("x");
        let mut b = crate::TestRunner::new("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_runnable_tests(a in 0u64..100, (x, y) in (0.0..1.0f64, 1i32..5)) {
            prop_assert!(a < 100);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(y.clamp(1, 4), y, "y out of range: {}", y);
        }
    }
}
