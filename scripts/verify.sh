#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
# The workspace is zero-external-dependency apart from rand/rand_chacha
# (dev/synthesis only) and criterion (benches), so this also doubles as
# the offline-sandbox smoke test: nothing here should need a registry
# once the lockfile/vendor cache is in place.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# The data-parallel runtime must be bitwise deterministic: the suite has
# to pass pinned to one worker and at the machine's natural width.
KRAFTWERK_THREADS=1 cargo test -q
cargo test -q
# The whole suite must also hold with the spectral Poisson backend forced
# through the KRAFTWERK_POISSON override — the backends are drop-in
# replacements, not separately-tested islands.
KRAFTWERK_POISSON=spectral cargo test -q
# The adversarial corpus and watchdog-recovery suite must stay green on
# its own too — it is the contract behind the panic audit below.
cargo test -q --test robustness
cargo clippy --all-targets -- -D warnings
# No new unwrap()/expect()/panic! in library crates (allowlisted
# invariants only — see scripts/panic-allowlist.txt).
bash scripts/panic_audit.sh
# Bench schema smoke (writes to a scratch file, never the committed
# baseline) and the regression gate: HPWL drift beyond 2% against
# BENCH_place.json is fatal, wall-clock drift is warn-only.
bench_smoke=$(mktemp)
obs_dir=$(mktemp -d)
trap 'rm -f "$bench_smoke"; rm -rf "$obs_dir"' EXIT
cargo run --release --bin kraftwerk -- bench --json --max-cells 200 -o "$bench_smoke" -q
KRAFTWERK_BIN=target/release/kraftwerk bash scripts/bench_gate.sh

# Large-netlist smoke: the 50k-cell scale tier must place end-to-end
# through the multilevel + bound-to-bound flow inside a generous
# wall-clock budget (measured ~12 s; the budget allows for slow CI).
timeout 300 target/release/kraftwerk bench --json --modes multilevel-b2b \
    --max-cells 50000 -o "$bench_smoke" -q \
    || { echo "verify: 50k multilevel smoke failed or exceeded 300s" >&2; exit 1; }
python3 - "$bench_smoke" <<'EOF'
import json, sys
runs = json.load(open(sys.argv[1]))["runs"]
tiers = {r["netlist"]: r for r in runs if r["mode"] == "multilevel-b2b"}
assert "scale50k" in tiers, f"scale50k row missing: {sorted(tiers)}"
assert all(r["legal"] for r in tiers.values()), "multilevel smoke produced illegal placement"
print("multilevel smoke: OK (" + ", ".join(f"{n} in {r['wall_s']:.1f}s" for n, r in sorted(tiers.items())) + ")")
EOF

# Observability smoke on a fract-scale run. Three contracts:
#   1. telemetry is observation-only — the placement with every probe on
#      (trace + report + alloc tracking + perfetto) is bitwise identical
#      to the untraced one;
#   2. the arena claim holds at runtime — per-phase steady-state heap
#      allocation is bounded (density_map amortizes to zero allocations
#      per iteration, no phase exceeds a small per-iteration constant);
#   3. the Perfetto export is a valid trace whose span tree carries the
#      report's phases.
target/release/kraftwerk gen fract 125 147 6 -o "$obs_dir/fract.kw" > /dev/null
target/release/kraftwerk place "$obs_dir/fract.kw" --fast -o "$obs_dir/plain.pl" --quiet
target/release/kraftwerk place "$obs_dir/fract.kw" --fast -o "$obs_dir/traced.pl" \
    --alloc-stats --trace "$obs_dir/run.jsonl" --report "$obs_dir/report.json" \
    --perfetto "$obs_dir/trace.json" --quiet > /dev/null
cmp "$obs_dir/plain.pl" "$obs_dir/traced.pl" \
    || { echo "verify: telemetry perturbed the placement" >&2; exit 1; }
python3 - "$obs_dir" <<'EOF'
import json, sys
d = sys.argv[1]
report = json.load(open(f"{d}/report.json"))
alloc = {a["phase"]: a for a in report["alloc"]}
assert alloc, "no alloc records in report"
for phase, a in alloc.items():
    per_iter = a["allocs"] / max(a["samples"], 1)
    assert per_iter <= 32, f"{phase}: {per_iter:.1f} allocs/iteration — arena regression"
dm = alloc["place.density_map"]
assert dm["allocs"] < dm["samples"], "density_map no longer allocation-free at steady state"
assert {u["span"] for u in report["utilization"]} >= set(alloc), "utilization spans missing"
trace = json.load(open(f"{d}/trace.json"))
events = trace["traceEvents"]
assert events and all("ph" in e and "name" in e for e in events), "malformed trace events"
spans = {e["name"] for e in events if e["ph"] == "X"}
# The alloc bracket wraps the X/Y join as one phase (`place.solve_xy`);
# the timed span tree records the two overlapped solves individually.
if {"place.solve_x", "place.solve_y"} <= spans:
    spans.add("place.solve_xy")
missing = set(alloc) - spans
assert not missing, f"report phases absent from perfetto span tree: {missing}"
assert any(e["ph"] == "C" for e in events), "no counter tracks in perfetto export"
print(f"observability smoke: OK ({len(events)} trace events, "
      f"{len(alloc)} instrumented phases)")
EOF

echo "verify: OK"
