#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
# The workspace is zero-external-dependency apart from rand/rand_chacha
# (dev/synthesis only) and criterion (benches), so this also doubles as
# the offline-sandbox smoke test: nothing here should need a registry
# once the lockfile/vendor cache is in place.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# The data-parallel runtime must be bitwise deterministic: the suite has
# to pass pinned to one worker and at the machine's natural width.
KRAFTWERK_THREADS=1 cargo test -q
cargo test -q
# The whole suite must also hold with the spectral Poisson backend forced
# through the KRAFTWERK_POISSON override — the backends are drop-in
# replacements, not separately-tested islands.
KRAFTWERK_POISSON=spectral cargo test -q
# The adversarial corpus and watchdog-recovery suite must stay green on
# its own too — it is the contract behind the panic audit below.
cargo test -q --test robustness
cargo clippy --all-targets -- -D warnings
# No new unwrap()/expect()/panic! in library crates (allowlisted
# invariants only — see scripts/panic-allowlist.txt).
bash scripts/panic_audit.sh
# Bench schema smoke (writes to a scratch file, never the committed
# baseline) and the regression gate: HPWL drift beyond 2% against
# BENCH_place.json is fatal, wall-clock drift is warn-only.
bench_smoke=$(mktemp)
trap 'rm -f "$bench_smoke"' EXIT
cargo run --release --bin kraftwerk -- bench --json --max-cells 200 -o "$bench_smoke" -q
KRAFTWERK_BIN=target/release/kraftwerk bash scripts/bench_gate.sh

echo "verify: OK"
