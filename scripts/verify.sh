#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint. Run from the repo root.
#
# The workspace is zero-external-dependency apart from rand/rand_chacha
# (dev/synthesis only) and criterion (benches), so this also doubles as
# the offline-sandbox smoke test: nothing here should need a registry
# once the lockfile/vendor cache is in place.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# The data-parallel runtime must be bitwise deterministic: the suite has
# to pass pinned to one worker and at the machine's natural width.
KRAFTWERK_THREADS=1 cargo test -q
cargo test -q
# The whole suite must also hold with the spectral Poisson backend forced
# through the KRAFTWERK_POISSON override — the backends are drop-in
# replacements, not separately-tested islands.
KRAFTWERK_POISSON=spectral cargo test -q
# The adversarial corpus and watchdog-recovery suite must stay green on
# its own too — it is the contract behind the panic audit below.
cargo test -q --test robustness
cargo clippy --all-targets -- -D warnings
# No new unwrap()/expect()/panic! in library crates (allowlisted
# invariants only — see scripts/panic-allowlist.txt).
bash scripts/panic_audit.sh
# Bench schema smoke (writes to a scratch file, never the committed
# baseline) and the regression gate: HPWL drift beyond 2% against
# BENCH_place.json is fatal, wall-clock drift is warn-only.
bench_smoke=$(mktemp)
obs_dir=$(mktemp -d)
trap 'rm -f "$bench_smoke"; rm -rf "$obs_dir"' EXIT
cargo run --release --bin kraftwerk -- bench --json --max-cells 200 -o "$bench_smoke" -q
KRAFTWERK_BIN=target/release/kraftwerk bash scripts/bench_gate.sh
# The committed multilevel-b2b scale-tier rows (scale10k/scale50k/
# scale250k) are enforcing too: rerun the V-cycle flow and fail on HPWL
# drift, same 2% bar as the flat modes (HPWL is bitwise deterministic,
# so any drift is a real change).
KRAFTWERK_BIN=target/release/kraftwerk MODES=multilevel-b2b MAX_CELLS=250000 \
    bash scripts/bench_gate.sh
# The spectral- and hybrid-backend scale-tier rows (scale10k/scale50k)
# gate the Poisson backends inside the multilevel flow at the same 2%
# HPWL bar — a kernel change that shifts placement quality fails here.
KRAFTWERK_BIN=target/release/kraftwerk MODES=multilevel-spectral,multilevel-hybrid MAX_CELLS=50000 \
    bash scripts/bench_gate.sh

# Large-netlist smoke: the 50k-cell scale tier must place end-to-end
# through the multilevel + bound-to-bound flow inside a generous
# wall-clock budget (measured ~12 s; the budget allows for slow CI).
timeout 300 target/release/kraftwerk bench --json --modes multilevel-b2b \
    --max-cells 50000 -o "$bench_smoke" -q \
    || { echo "verify: 50k multilevel smoke failed or exceeded 300s" >&2; exit 1; }
python3 - "$bench_smoke" <<'EOF'
import json, sys
runs = json.load(open(sys.argv[1]))["runs"]
tiers = {r["netlist"]: r for r in runs if r["mode"] == "multilevel-b2b"}
assert "scale50k" in tiers, f"scale50k row missing: {sorted(tiers)}"
assert all(r["legal"] for r in tiers.values()), "multilevel smoke produced illegal placement"
print("multilevel smoke: OK (" + ", ".join(f"{n} in {r['wall_s']:.1f}s" for n, r in sorted(tiers.items())) + ")")
EOF

# Observability smoke on a fract-scale run. Three contracts:
#   1. telemetry is observation-only — the placement with every probe on
#      (trace + report + alloc tracking + perfetto) is bitwise identical
#      to the untraced one;
#   2. the arena claim holds at runtime — per-phase steady-state heap
#      allocation is bounded (density_map amortizes to zero allocations
#      per iteration, no phase exceeds a small per-iteration constant);
#   3. the Perfetto export is a valid trace whose span tree carries the
#      report's phases.
target/release/kraftwerk gen fract 125 147 6 -o "$obs_dir/fract.kw" > /dev/null
target/release/kraftwerk place "$obs_dir/fract.kw" --fast -o "$obs_dir/plain.pl" --quiet
target/release/kraftwerk place "$obs_dir/fract.kw" --fast -o "$obs_dir/traced.pl" \
    --alloc-stats --trace "$obs_dir/run.jsonl" --report "$obs_dir/report.json" \
    --perfetto "$obs_dir/trace.json" --quiet > /dev/null
cmp "$obs_dir/plain.pl" "$obs_dir/traced.pl" \
    || { echo "verify: telemetry perturbed the placement" >&2; exit 1; }
python3 - "$obs_dir" <<'EOF'
import json, sys
d = sys.argv[1]
report = json.load(open(f"{d}/report.json"))
alloc = {a["phase"]: a for a in report["alloc"]}
assert alloc, "no alloc records in report"
for phase, a in alloc.items():
    per_iter = a["allocs"] / max(a["samples"], 1)
    assert per_iter <= 32, f"{phase}: {per_iter:.1f} allocs/iteration — arena regression"
dm = alloc["place.density_map"]
assert dm["allocs"] < dm["samples"], "density_map no longer allocation-free at steady state"
assert {u["span"] for u in report["utilization"]} >= set(alloc), "utilization spans missing"
trace = json.load(open(f"{d}/trace.json"))
events = trace["traceEvents"]
assert events and all("ph" in e and "name" in e for e in events), "malformed trace events"
spans = {e["name"] for e in events if e["ph"] == "X"}
# The alloc bracket wraps the X/Y join as one phase (`place.solve_xy`);
# the timed span tree records the two overlapped solves individually.
if {"place.solve_x", "place.solve_y"} <= spans:
    spans.add("place.solve_xy")
missing = set(alloc) - spans
assert not missing, f"report phases absent from perfetto span tree: {missing}"
assert any(e["ph"] == "C" for e in events), "no counter tracks in perfetto export"
print(f"observability smoke: OK ({len(events)} trace events, "
      f"{len(alloc)} instrumented phases)")
EOF

# Daemon smoke: the served path end to end against a real process — one
# good job (trace-id correlated), one malformed frame, and one
# fault-injected job, each answered with the documented structured frame
# on a surviving connection, with the /metrics sidecar scraped between
# jobs (counters must move, the exposition must parse line by line, and
# /healthz must report ok), then a SIGTERM shutdown that must exit 0 and
# print the served: summary (README "Serving placements" and "Service
# metrics").
serve_log="$obs_dir/serve.log"
target/release/kraftwerk serve --workers 1 --queue-cap 4 --deadline 30 \
    --metrics-addr 127.0.0.1:0 \
    > "$serve_log" 2>&1 &
serve_pid=$!
serve_addr=""
metrics_url=""
for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's/^listening on //p' "$serve_log" | head -n 1)
    metrics_url=$(sed -n 's/^metrics on //p' "$serve_log" | head -n 1)
    [ -n "$serve_addr" ] && [ -n "$metrics_url" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ] || [ -z "$metrics_url" ]; then
    echo "verify: daemon never reported its addresses" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
fi
python3 - "$serve_addr" "$obs_dir/fract.kw" "$metrics_url" <<'EOF'
import json, socket, sys, time, urllib.request
host, port = sys.argv[1].rsplit(":", 1)
netlist = open(sys.argv[2]).read()
metrics_url = sys.argv[3]
health_url = metrics_url.rsplit("/", 1)[0] + "/healthz"
sock = socket.create_connection((host, int(port)), timeout=60)
f = sock.makefile("rw")

def send(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()

def recv():
    line = f.readline()
    assert line, "daemon closed the connection"
    return json.loads(line)

def outcome():
    r = recv()
    while r["type"] == "progress":
        r = recv()
    return r

def scrape():
    body = urllib.request.urlopen(metrics_url, timeout=10).read().decode()
    samples = {}
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            # Exposition comments are HELP/TYPE only.
            assert line.startswith("# HELP ") or line.startswith("# TYPE "), line
            continue
        series, _, value = line.rpartition(" ")
        assert series, f"malformed sample: {line}"
        float(value)  # every sample value must parse
        samples[series] = float(value)
    return samples

def scrape_until(series, value, tries=100):
    # The solve-wall sample lands a moment after the result frame is
    # sent; give each counter a bounded window to settle.
    for _ in range(tries):
        m = scrape()
        if m.get(series) == value:
            return m
        time.sleep(0.02)
    raise AssertionError(f"{series} never reached {value}: {scrape()}")

# 0. The sidecar answers before any job ran.
m0 = scrape()
assert m0.get('kraftwerk_jobs_total{outcome="ok"}') == 0.0, m0

# 1. A good job round-trips: queued ack, then an ok/degraded result,
#    every frame echoing the client trace id.
send({"type": "place", "id": "smoke-good", "mode": "fast",
      "netlist": netlist, "max_transformations": 12,
      "trace_id": "verify-smoke-1"})
q = recv()
assert q["type"] == "queued" and q["trace_id"] == "verify-smoke-1", q
r = outcome()
assert r["type"] == "result" and r["status"] in ("ok", "degraded"), r
assert r["trace_id"] == "verify-smoke-1", r

# 2. The scrape reflects the finished job: outcome counter moved, both
#    SLO histograms carry the sample.
m1 = scrape_until("kraftwerk_solve_wall_seconds_count", 1.0)
done = (m1.get('kraftwerk_jobs_total{outcome="ok"}', 0)
        + m1.get('kraftwerk_jobs_total{outcome="degraded"}', 0))
assert done == 1.0, f"jobs_total did not move: {m1}"
assert m1.get("kraftwerk_queue_wait_seconds_count") == 1.0, m1
assert any('kraftwerk_queue_wait_seconds_bucket{le="' in s for s in m1), \
    "queue-wait histogram buckets missing from exposition"
assert any('kraftwerk_solve_wall_seconds_bucket{le="' in s for s in m1), \
    "solve-wall histogram buckets missing from exposition"

# 3. A malformed frame answers a structured protocol error (same
#    taxonomy code as CLI exit 2) and the connection resyncs.
f.write("this is not json\n")
f.flush()
e = recv()
assert e["type"] == "error" and e["stage"] == "protocol" and e["code"] == 2, e

# 4. A fault-injected job fails as a parse-stage error frame (code 4,
#    the CLI parse exit code) without taking the worker down, and the
#    failure lands in the metrics.
send({"type": "place", "id": "smoke-fault", "mode": "fast",
      "netlist": netlist, "fault": "parse", "max_transformations": 12})
q = recv()
assert q["type"] == "queued", q
e = outcome()
assert e["type"] == "error" and e["stage"] == "parse" and e["code"] == 4, e
m2 = scrape_until("kraftwerk_solve_wall_seconds_count", 2.0)
assert m2.get('kraftwerk_jobs_total{outcome="failed"}') == 1.0, m2

# 5. The daemon is still healthy after both failure paths — protocol
#    ping and HTTP liveness probe agree.
send({"type": "ping"})
assert recv()["type"] == "pong"
with urllib.request.urlopen(health_url, timeout=10) as resp:
    assert resp.status == 200, resp.status
    health = json.loads(resp.read().decode())
assert health["status"] == "ok" and health["queue_depth"] == 0, health
print("daemon smoke: OK (good / malformed / fault-injected answered; "
      f"{len(m2)} metric series scraped)")
EOF
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "verify: daemon did not exit cleanly on SIGTERM" >&2
    exit 1
fi
grep -q "^served: " "$serve_log" \
    || { echo "verify: no served: summary after SIGTERM" >&2; exit 1; }

# Opt-in slow tier: KRAFTWERK_SLOW=1 places the million-cell scale tier
# end to end (measured ~5 min by the EXPERIMENTS E7 extrapolation; the
# budget allows for slow CI). Off by default to keep verify.sh fast.
if [ "${KRAFTWERK_SLOW:-0}" = "1" ]; then
    timeout 900 target/release/kraftwerk bench --json --modes multilevel-b2b \
        --max-cells 1000000 -o "$bench_smoke" -q \
        || { echo "verify: scale1m smoke failed or exceeded 900s" >&2; exit 1; }
    python3 - "$bench_smoke" <<'EOF'
import json, sys
runs = json.load(open(sys.argv[1]))["runs"]
tiers = {r["netlist"]: r for r in runs if r["mode"] == "multilevel-b2b"}
assert "scale1m" in tiers, f"scale1m row missing: {sorted(tiers)}"
assert all(r["legal"] for r in tiers.values()), "scale1m smoke produced illegal placement"
print("scale1m smoke: OK (" + ", ".join(f"{n} in {r['wall_s']:.1f}s" for n, r in sorted(tiers.items())) + ")")
EOF
fi

echo "verify: OK"
