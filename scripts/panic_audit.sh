#!/usr/bin/env bash
# Panic audit: deny new `unwrap()` / `expect()` / `panic!` /
# `unreachable!` / `todo!` / `unimplemented!` sites in the library
# crates. The library's contract (README "Robustness & recovery") is
# that any input produces a typed `KraftwerkError`, never a crash, so
# every potential panic site has to be a deliberate, reviewed invariant.
#
# Mechanics: for every library source file the script counts potential
# panic sites outside `#[cfg(test)]` modules (the repo convention puts
# the test module at the bottom of the file, so everything from that
# attribute down is skipped) and outside `//` comments, then compares
# against scripts/panic-allowlist.txt. A file above its allowance fails
# the audit; a file below it prints a reminder to ratchet the allowance
# down. The bench harness and the binaries are exempt — they are
# applications, where panicking on a broken experiment is correct.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/panic-allowlist.txt
PATTERN='\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\('

count_sites() { # count_sites <file>
    awk '/^#\[cfg\(test\)\]$/{exit} {print}' "$1" \
        | sed 's|//.*||' \
        | grep -cE "$PATTERN" || true
}

fail=0
checked=0
while IFS= read -r file; do
    checked=$((checked + 1))
    n=$(count_sites "$file")
    allowed=$(awk -v f="$file" '$1 == f {print $2}' "$ALLOWLIST")
    allowed=${allowed:-0}
    if [ "$n" -gt "$allowed" ]; then
        echo "panic-audit: $file has $n potential panic sites (allowance $allowed)" >&2
        awk '/^#\[cfg\(test\)\]$/{exit} {print NR": "$0}' "$file" \
            | sed 's|//.*||' | grep -E "$PATTERN" >&2 || true
        fail=1
    elif [ "$n" -lt "$allowed" ]; then
        echo "panic-audit: $file is below its allowance ($n < $allowed) — ratchet $ALLOWLIST down"
    fi
done < <(find crates/*/src src/lib.rs -name '*.rs' -not -path 'crates/bench/*' | sort)

# Allowlisted files must exist — a stale entry hides a rename.
while read -r file _; do
    case "$file" in ''|'#'*) continue ;; esac
    if [ ! -f "$file" ]; then
        echo "panic-audit: allowlist entry $file does not exist" >&2
        fail=1
    fi
done < "$ALLOWLIST"

if [ "$fail" -ne 0 ]; then
    echo "panic-audit: FAILED — convert new sites to KraftwerkError or justify them in $ALLOWLIST" >&2
    exit 1
fi
echo "panic-audit: OK ($checked files)"
