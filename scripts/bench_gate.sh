#!/usr/bin/env bash
# Bench regression gate: rerun the small Table 1 circuits and diff the
# result against the committed BENCH_place.json baseline.
#
# HPWL is bitwise deterministic for a given circuit/config at any thread
# count, so any drift beyond the hard tolerance (2% by default) is a
# real quality regression and fails the gate with a non-zero exit. Wall
# clock depends on the host: drift is recorded in the verdict JSON but
# is warn-only — it never fails the build.
#
# Environment overrides:
#   KRAFTWERK_BIN  path to a prebuilt `kraftwerk` binary (skips cargo)
#   BASELINE       baseline file (default BENCH_place.json)
#   MAX_CELLS      circuit-size cap for the rerun (default 2000)
#   MODES          comma-separated baseline modes to gate (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_place.json}
MAX_CELLS=${MAX_CELLS:-2000}
MODES=${MODES:-}
KRAFTWERK=${KRAFTWERK_BIN:-}
if [ -z "$KRAFTWERK" ]; then
    cargo build --release --bin kraftwerk
    KRAFTWERK=target/release/kraftwerk
fi
if [ ! -f "$BASELINE" ]; then
    echo "bench-gate: baseline $BASELINE not found" >&2
    exit 1
fi

verdict=$(mktemp)
trap 'rm -f "$verdict"' EXIT
MODE_ARGS=()
if [ -n "$MODES" ]; then
    MODE_ARGS=(--modes "$MODES")
fi
if ! "$KRAFTWERK" bench --compare "$BASELINE" --max-cells "$MAX_CELLS" "${MODE_ARGS[@]}" -o "$verdict" -q; then
    echo "bench-gate: FAILED — HPWL regressed beyond tolerance against $BASELINE" >&2
    cat "$verdict" >&2 || true
    exit 1
fi
warnings=$(sed -n 's/.*"wall_warnings":\([0-9][0-9]*\).*/\1/p' "$verdict")
warnings=${warnings:-0}
if [ "$warnings" -eq 0 ]; then
    echo "bench-gate: OK (hpwl within tolerance, wall clock steady)"
else
    # The verdict's `warnings` array carries one human-readable string
    # per soft finding; the count summarizes it for CI logs.
    echo "bench-gate: OK with $warnings wall-clock drift warning(s) (warn-only); verdict:"
    cat "$verdict"
fi
