//! Mixed block/cell floorplanning: the paper's headline claim that blocks
//! and cells are placed together "without treating blocks and cells
//! differently". Writes an SVG of the final floorplan.
//!
//! ```sh
//! cargo run --release --example floorplan_mixed
//! ```

use kraftwerk::floorplan::{is_legal_mixed, place_mixed, recommended_aspect, MixedPlaceConfig};
use kraftwerk::geom::svg::SvgCanvas;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, CellKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 600 standard cells plus 6 macro blocks.
    let netlist = generate(&SynthConfig::with_size("floorplan_demo", 600, 720, 14).blocks(6));
    let blocks: Vec<_> = netlist
        .cells()
        .filter(|(_, c)| c.kind() == CellKind::Block)
        .collect();
    println!(
        "mixed design: {} cells + {} blocks (largest block {:.0}x the average cell)",
        netlist.num_movable() - blocks.len(),
        blocks.len(),
        blocks
            .iter()
            .map(|(_, c)| c.area())
            .fold(0.0, f64::max)
            / netlist.average_cell_area(),
    );

    let result = place_mixed(&netlist, &MixedPlaceConfig::default())?;
    println!(
        "floorplan: hpwl {:.0}, block overlap {:.1}, fully legal: {}",
        result.hpwl,
        result.block_overlap_area,
        is_legal_mixed(&netlist, &result.legal, 1e-6),
    );
    println!(
        "global -> legal displacement: avg {:.1} units",
        result.global.total_displacement(&result.legal) / netlist.num_movable() as f64
    );

    // Soft-block shaping suggestions (flexible blocks, section 5).
    for (id, cell) in &blocks {
        let aspect = recommended_aspect(&netlist, &result.legal, *id, 0.33, 3.0);
        println!(
            "  soft block {}: current aspect {:.2}, recommended {:.2}",
            cell.name(),
            cell.size().aspect_ratio(),
            aspect
        );
    }

    // SVG snapshot.
    let core = netlist.core_region();
    let mut svg = SvgCanvas::new(core.inflate(core.width() * 0.03), 900.0);
    for (id, cell) in netlist.cells() {
        let rect = result.legal.cell_rect(id, cell.size());
        let color = match cell.kind() {
            CellKind::Standard => "#4682b4",
            CellKind::Block => "#c06030",
            CellKind::Fixed => "#333333",
        };
        svg.rect(&rect, color, 0.65);
    }
    std::fs::write("floorplan_mixed.svg", svg.finish())?;
    println!("wrote floorplan_mixed.svg");
    let _ = metrics::hpwl(&netlist, &result.legal);
    Ok(())
}
