//! Quickstart: generate a benchmark, run the full Kraftwerk flow, and
//! write SVG snapshots of the placement before and after.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kraftwerk::geom::svg::SvgCanvas;
use kraftwerk::legalize::{check_legality, legalize, refine};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, CellKind, Netlist, Placement};
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};

fn snapshot(netlist: &Netlist, placement: &Placement, path: &str) -> std::io::Result<()> {
    let core = netlist.core_region();
    let mut svg = SvgCanvas::new(core.inflate(core.width() * 0.03), 900.0);
    for row in netlist.rows() {
        svg.rect(&row.rect(), "#f2f2f2", 1.0);
    }
    for (id, cell) in netlist.cells() {
        let rect = placement.cell_rect(id, cell.size());
        let color = match cell.kind() {
            CellKind::Standard => "#4682b4",
            CellKind::Block => "#c06030",
            CellKind::Fixed => "#333333",
        };
        svg.rect(&rect, color, 0.6);
    }
    std::fs::write(path, svg.finish())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An MCNC-shaped synthetic circuit: 800 cells, 950 nets, 16 rows.
    let netlist = generate(&SynthConfig::with_size("quickstart", 800, 950, 16));
    println!("circuit: {}", kraftwerk::netlist::stats::NetlistStats::collect(&netlist));

    // Global placement (the paper's standard mode, K = 0.2).
    let placer = GlobalPlacer::new(KraftwerkConfig::standard());
    let start = std::time::Instant::now();
    let result = placer.place(&netlist);
    println!(
        "global placement: {} transformations in {:.2}s, hpwl {:.0}, converged: {}",
        result.iterations(),
        start.elapsed().as_secs_f64(),
        metrics::hpwl(&netlist, &result.placement),
        result.converged,
    );
    snapshot(&netlist, &result.placement, "quickstart_global.svg")?;

    // Legalize into rows and refine (the Domino-style final placement).
    let mut legal = legalize(&netlist, &result.placement)?;
    let gained = refine(&netlist, &mut legal, 2);
    let report = check_legality(&netlist, &legal, 1e-6);
    println!(
        "legalized: hpwl {:.0} (refinement recovered {:.0}), legal: {}",
        metrics::hpwl(&netlist, &legal),
        gained,
        report.is_legal(),
    );
    snapshot(&netlist, &legal, "quickstart_legal.svg")?;
    println!("wrote quickstart_global.svg and quickstart_legal.svg");
    Ok(())
}
