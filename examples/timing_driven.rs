//! Timing-driven placement: minimize the longest path, then *meet* an
//! explicit delay requirement with a recorded timing/area trade-off curve
//! (the two flows of the paper's section 5).
//!
//! ```sh
//! cargo run --release --example timing_driven
//! ```

use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::metrics;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};
use kraftwerk::timing::{meet_requirements, optimize_timing, DelayModel, Sta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generate(&SynthConfig::with_size("timing_demo", 1000, 1200, 18));
    let model = DelayModel::default();
    let sta = Sta::new(&netlist, model)?;
    let config = KraftwerkConfig::standard();

    // Baseline: plain area-driven placement.
    let plain = GlobalPlacer::new(config.clone()).place(&netlist);
    let plain_delay = sta.analyze(&plain.placement).max_delay;
    let bound = sta.lower_bound();
    println!("zero-wire lower bound: {bound:.2} ns");
    println!(
        "area-driven:   delay {plain_delay:.2} ns, hpwl {:.0}",
        metrics::hpwl(&netlist, &plain.placement)
    );

    // Flow 1: timing optimization (iterative net weighting).
    let optimized = optimize_timing(&netlist, model, config.clone())?;
    let opt_delay = sta.analyze(&optimized.placement).max_delay;
    let exploitation = (plain_delay - opt_delay) / (plain_delay - bound);
    println!(
        "timing-driven: delay {opt_delay:.2} ns, hpwl {:.0} — exploited {:.0}% of the optimization potential",
        metrics::hpwl(&netlist, &optimized.placement),
        exploitation * 100.0,
    );

    // Flow 2: meet a requirement halfway between the two, and show the
    // recorded trade-off curve.
    let requirement = 0.5 * (plain_delay + opt_delay);
    let met = meet_requirements(&netlist, model, config, requirement, 60)?;
    println!(
        "\nmeet {requirement:.2} ns: met = {} after {} extra transformations",
        met.met,
        met.curve.len() - 1
    );
    println!("timing/area trade-off curve (paper: 'which timing can be achieved at which area cost'):");
    for point in met.curve.iter().take(12) {
        println!(
            "  step {:2}: delay {:7.2} ns   hpwl {:9.0}",
            point.iteration, point.max_delay, point.hpwl
        );
    }
    Ok(())
}
