//! ECO / logic-synthesis interaction: change the netlist after placement
//! and re-place incrementally with minimal disturbance (section 5).
//!
//! A placed design receives 2% extra cells (as a synthesis step would
//! add buffers or resized gates); the incremental flow adapts the
//! placement around them instead of starting over.
//!
//! ```sh
//! cargo run --release --example eco_flow
//! ```

use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{metrics, NetlistBuilder, PinDirection, Placement};
use kraftwerk::geom::{Point, Size};
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = generate(&SynthConfig::with_size("eco_demo", 800, 950, 16));
    let placer = GlobalPlacer::new(KraftwerkConfig::standard());
    let before = placer.place(&original);
    println!(
        "original: {} cells, hpwl {:.0}",
        original.num_movable(),
        metrics::hpwl(&original, &before.placement)
    );

    // --- netlist change: clone the design and append 2% new cells, each
    // spliced into an existing net (what buffer insertion looks like).
    let mut builder = NetlistBuilder::new();
    builder.name("eco_demo_v2");
    builder.core_region(original.core_region());
    builder.rows(original.rows().len(), original.rows()[0].height);
    let mut id_map = Vec::with_capacity(original.num_cells());
    for (_, cell) in original.cells() {
        let id = match cell.kind() {
            kraftwerk::netlist::CellKind::Fixed => builder.add_fixed_cell(
                cell.name(),
                cell.size(),
                cell.fixed_position().expect("fixed cell has position"),
            ),
            kraftwerk::netlist::CellKind::Block => builder.add_block(cell.name(), cell.size()),
            kraftwerk::netlist::CellKind::Standard => builder.add_cell(cell.name(), cell.size()),
        };
        builder.set_delay(id, cell.delay());
        builder.set_power(id, cell.power());
        id_map.push(id);
    }
    for (_, net) in original.nets() {
        let pins: Vec<_> = net
            .pins()
            .iter()
            .map(|&p| {
                let pin = original.pin(p);
                (id_map[pin.cell().index()], pin.offset(), pin.direction())
            })
            .collect();
        builder.add_weighted_net(net.name(), net.weight(), pins);
    }
    let extra = original.num_movable() / 50; // 2%
    for i in 0..extra {
        let id = builder.add_cell(format!("eco_buf{i}"), Size::new(6.0, 16.0));
        // Splice into an existing net as an extra load.
        let net = kraftwerk::netlist::NetId::from_index((i * 37) % original.num_nets());
        builder.add_pin_to_net(net, id, PinDirection::Input);
    }
    let changed = builder.build()?;

    // --- incremental re-placement: existing cells start where they were,
    // new cells at the core center.
    let mut warm = Placement::from_positions(
        changed
            .cell_ids()
            .map(|id| {
                if id.index() < original.num_cells() {
                    before.placement.position(kraftwerk::netlist::CellId::from_index(id.index()))
                } else {
                    changed.core_region().center()
                }
            })
            .collect::<Vec<Point>>(),
    );
    // Nudge new cells near their net's centroid for a fair start.
    for id in changed.cell_ids().skip(original.num_cells()) {
        if let Some(&pid) = changed.cell(id).pins().first() {
            let net = changed.pin(pid).net();
            let bbox = metrics::net_bounding_box(&changed, &warm, net);
            if let Some(r) = bbox.rect() {
                warm.set_position(id, r.center());
            }
        }
    }

    let eco = placer.place_incremental(&changed, warm);
    // How far did the pre-existing cells move?
    let mut moved = 0.0f64;
    let mut max_moved = 0.0f64;
    for id in original.cell_ids() {
        let d = before
            .placement
            .position(id)
            .distance(eco.placement.position(kraftwerk::netlist::CellId::from_index(id.index())));
        moved += d;
        max_moved = max_moved.max(d);
    }
    let core = changed.core_region();
    println!(
        "ECO with {extra} new cells: avg displacement {:.2} units ({:.2}% of the die), max {:.1}",
        moved / original.num_cells() as f64,
        100.0 * moved / original.num_cells() as f64 / core.half_perimeter(),
        max_moved,
    );
    println!(
        "new hpwl {:.0} (vs {:.0} before the change)",
        metrics::hpwl(&changed, &eco.placement),
        metrics::hpwl(&original, &before.placement)
    );

    // Contrast: placing the changed netlist from scratch moves everything.
    let scratch = placer.place(&changed);
    let mut scratch_moved = 0.0f64;
    for id in original.cell_ids() {
        scratch_moved += before.placement.position(id).distance(
            scratch.placement.position(kraftwerk::netlist::CellId::from_index(id.index())),
        );
    }
    println!(
        "from-scratch re-place would have moved cells {:.1}x as far on average",
        scratch_moved / moved.max(1e-9)
    );
    Ok(())
}
