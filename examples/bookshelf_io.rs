//! Bookshelf interchange: export a placed design as a GSRC Bookshelf file
//! set (`.aux`/`.nodes`/`.nets`/`.pl`/`.scl`), read it back, and verify
//! the round trip — the path for exchanging designs with external
//! placement tools.
//!
//! ```sh
//! cargo run --release --example bookshelf_io
//! ```

use kraftwerk::legalize::legalize;
use kraftwerk::netlist::format::bookshelf;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::metrics;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generate(&SynthConfig::with_size("bookshelf_demo", 400, 500, 10));
    let global = GlobalPlacer::new(KraftwerkConfig::standard()).place(&netlist);
    let legal = legalize(&netlist, &global.placement)?;
    println!(
        "placed {}: hpwl {:.0}",
        netlist.name(),
        metrics::hpwl(&netlist, &legal)
    );

    // Export.
    let files = bookshelf::write(&netlist, Some(&legal));
    let dir = std::path::Path::new("bookshelf_demo");
    std::fs::create_dir_all(dir)?;
    for (ext, content) in &files {
        let path = dir.join(format!("{}.{ext}", netlist.name()));
        std::fs::write(&path, content)?;
        println!("wrote {} ({} bytes)", path.display(), content.len());
    }

    // Re-import and verify.
    let (back, placement) = bookshelf::read(&files)?;
    let placement = placement.expect("placement was exported");
    println!(
        "reimported: {} cells, {} nets, hpwl {:.0} (matches: {})",
        back.num_cells(),
        back.num_nets(),
        metrics::hpwl(&back, &placement),
        (metrics::hpwl(&back, &placement) - metrics::hpwl(&netlist, &legal)).abs() < 1.0,
    );
    Ok(())
}
