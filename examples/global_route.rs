//! Global routing validation: route a placement with the pattern router,
//! compare the probabilistic congestion estimate against true routed
//! congestion, and show how congestion-driven placement changes the
//! routed outcome.
//!
//! ```sh
//! cargo run --release --example global_route
//! ```

use kraftwerk::congestion::router::{route, RouterConfig};
use kraftwerk::congestion::{congestion_map, demand_for_session};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::metrics;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig, PlacementSession};

fn main() {
    let netlist = generate(&SynthConfig::with_size("route_demo", 1500, 1800, 20));
    let config = KraftwerkConfig::standard();
    let (nx, ny) = PlacementSession::new(&netlist, config.clone()).grid_dims();

    // Plain placement, routed.
    let plain = GlobalPlacer::new(config.clone()).place(&netlist).placement;
    // Capacity sized to ~80% of what the plain placement demands at its
    // worst edge, so the router has to negotiate.
    let probe = route(&netlist, &plain, nx, ny, &RouterConfig {
        capacity_h: f64::INFINITY,
        capacity_v: f64::INFINITY,
        reroute_passes: 0,
        ..RouterConfig::default()
    });
    let peak_usage = probe.grid.max_utilization(&RouterConfig {
        capacity_h: 1.0,
        capacity_v: 1.0,
        ..RouterConfig::default()
    });
    let router_cfg = RouterConfig {
        capacity_h: 0.55 * peak_usage,
        capacity_v: 0.55 * peak_usage,
        reroute_passes: 4,
        ..RouterConfig::default()
    };
    let routed = route(&netlist, &plain, nx, ny, &router_cfg);
    println!(
        "plain placement:      hpwl {:>9.0}, routed wl {:>7.0} gcells, overflow {:>6.0}, peak util {:.2}",
        metrics::hpwl(&netlist, &plain),
        routed.wirelength,
        routed.overflow,
        routed.max_utilization,
    );

    // Congestion-driven placement using the *router's* congestion map —
    // the full version of the paper's "a routing estimation is executed"
    // loop (the cheap probabilistic estimator is used inside the loop,
    // the router verifies the outcome).
    let mut session = PlacementSession::new(&netlist, config.clone());
    let tracks_estimate = 0.6
        * kraftwerk::congestion::routing_demand_map(&netlist, &plain, nx, ny).max();
    for _ in 0..config.max_transformations {
        let map = congestion_map(&netlist, session.placement(), nx, ny, tracks_estimate);
        session.set_demand_map(demand_for_session(&map), 2.0);
        session.transform();
        if session.is_converged() {
            break;
        }
    }
    let cong_routed = route(&netlist, session.placement(), nx, ny, &router_cfg);
    println!(
        "congestion-driven:    hpwl {:>9.0}, routed wl {:>7.0} gcells, overflow {:>6.0}, peak util {:.2}",
        metrics::hpwl(&netlist, session.placement()),
        cong_routed.wirelength,
        cong_routed.overflow,
        cong_routed.max_utilization,
    );
    println!(
        "overflow change: {:+.0}%",
        100.0 * (cong_routed.overflow - routed.overflow) / routed.overflow.max(1e-9)
    );
}
