//! Watch the algorithm work: dump the density deviation map and the
//! placement as SVG frames across the placement transformations — the
//! visual version of section 4.2's "each iteration makes the distribution
//! of the cells more even".
//!
//! ```sh
//! cargo run --release --example density_evolution
//! # then open density_frame_*.svg / placement_frame_*.svg
//! ```

use kraftwerk::field::{density_map, svg_heatmap};
use kraftwerk::geom::svg::SvgCanvas;
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::{CellKind, Netlist, Placement};
use kraftwerk::placer::{KraftwerkConfig, PlacementSession};

fn placement_svg(netlist: &Netlist, placement: &Placement) -> String {
    let core = netlist.core_region();
    let mut svg = SvgCanvas::new(core.inflate(core.width() * 0.02), 700.0);
    for (id, cell) in netlist.cells() {
        let color = match cell.kind() {
            CellKind::Standard => "#4682b4",
            CellKind::Block => "#c06030",
            CellKind::Fixed => "#333333",
        };
        svg.rect(&placement.cell_rect(id, cell.size()), color, 0.55);
    }
    svg.finish()
}

fn main() -> std::io::Result<()> {
    let netlist = generate(&SynthConfig::with_size("evolution", 1200, 1500, 16));
    let config = KraftwerkConfig::standard();
    let mut session = PlacementSession::new(&netlist, config.clone());
    let (nx, ny) = session.grid_dims();

    let mut frame = 0;
    loop {
        let stats = session.transform();
        let snapshot_due = stats.iteration == 1
            || stats.iteration.is_multiple_of(8)
            || session.is_converged()
            || session.is_stalled();
        if snapshot_due {
            let density = density_map(&netlist, session.placement(), nx, ny);
            std::fs::write(
                format!("density_frame_{frame:02}.svg"),
                svg_heatmap(&density, 700.0),
            )?;
            std::fs::write(
                format!("placement_frame_{frame:02}.svg"),
                placement_svg(&netlist, session.placement()),
            )?;
            println!(
                "frame {frame:02}: iteration {:3}, hpwl {:9.0}, peak density {:6.2}, empty square {:8.0}",
                stats.iteration, stats.hpwl, stats.peak_density, stats.empty_square_area
            );
            frame += 1;
        }
        if session.is_converged()
            || session.is_stalled()
            || session.iteration() >= config.max_transformations
        {
            break;
        }
    }
    println!("wrote {frame} density/placement frame pairs");
    Ok(())
}
