//! Congestion- and heat-driven placement (section 5): inject routing
//! overflow or temperature maps into the density model so the additional
//! forces also flatten congestion and hot spots.
//!
//! ```sh
//! cargo run --release --example congestion_heat
//! ```

use kraftwerk::congestion::{
    congestion_map, demand_for_session, peak, routing_demand_map, thermal_map, total_overflow,
};
use kraftwerk::netlist::synth::{generate, SynthConfig};
use kraftwerk::netlist::metrics;
use kraftwerk::placer::{GlobalPlacer, KraftwerkConfig, PlacementSession};

fn main() {
    let base = generate(&SynthConfig::with_size("maps_demo", 1000, 1200, 18));
    // Create a hot cluster: one contiguous index range (which the
    // locality model places together) burns 25x the power.
    let n = base.num_movable();
    let netlist = base.with_powers(|id, cell| {
        if (n / 3..n / 3 + n / 10).contains(&id.index()) {
            cell.power() * 25.0
        } else {
            cell.power()
        }
    });
    let config = KraftwerkConfig::standard();
    let (nx, ny) = PlacementSession::new(&netlist, config.clone()).grid_dims();

    // Plain placement for reference.
    let plain = GlobalPlacer::new(config.clone()).place(&netlist);
    // Routing capacity: 60% of the plain placement's peak demand, so the
    // reference design is (mildly) unroutable and there is something to
    // optimize.
    let tracks = 0.6 * routing_demand_map(&netlist, &plain.placement, nx, ny).max();
    let plain_overflow =
        total_overflow(&congestion_map(&netlist, &plain.placement, nx, ny, tracks));
    let plain_peak_t = peak(&thermal_map(&netlist, &plain.placement, nx, ny));
    println!(
        "plain:             hpwl {:9.0}  overflow {:8.0}  peak temp {:.2}",
        metrics::hpwl(&netlist, &plain.placement),
        plain_overflow,
        plain_peak_t
    );

    // Congestion-driven: re-estimate routing demand before each
    // transformation ("the placement and the congestion map converge
    // simultaneously").
    let mut session = PlacementSession::new(&netlist, config.clone());
    for _ in 0..config.max_transformations {
        let map = congestion_map(&netlist, session.placement(), nx, ny, tracks);
        session.set_demand_map(demand_for_session(&map), 2.5);
        session.transform();
        if session.is_converged() {
            break;
        }
    }
    let cong_overflow =
        total_overflow(&congestion_map(&netlist, session.placement(), nx, ny, tracks));
    println!(
        "congestion-driven: hpwl {:9.0}  overflow {:8.0}  ({:+.0}% overflow)",
        metrics::hpwl(&netlist, session.placement()),
        cong_overflow,
        100.0 * (cong_overflow - plain_overflow) / plain_overflow.max(1e-9),
    );

    // Heat-driven: same mechanism with the thermal map.
    let mut session = PlacementSession::new(&netlist, config.clone());
    for _ in 0..config.max_transformations {
        let map = thermal_map(&netlist, session.placement(), nx, ny);
        session.set_demand_map(demand_for_session(&map), 0.8);
        session.transform();
        if session.is_converged() {
            break;
        }
    }
    let heat_peak = peak(&thermal_map(&netlist, session.placement(), nx, ny));
    println!(
        "heat-driven:       hpwl {:9.0}  peak temp {:.2}       ({:+.0}% peak temperature)",
        metrics::hpwl(&netlist, session.placement()),
        heat_peak,
        100.0 * (heat_peak - plain_peak_t) / plain_peak_t.max(1e-9),
    );
}
